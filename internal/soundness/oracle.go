package soundness

import (
	"fmt"
	"strings"

	"dmdc/internal/isa"
	"dmdc/internal/lsq"
)

// InstSource yields a stream of instructions. core.Workload satisfies it
// structurally, which is what keeps this package free of a core import.
type InstSource interface {
	Next() isa.Inst
}

// Oracle is the lockstep architectural reference model. It consumes a
// second copy of the workload stream in order and, at every out-of-order
// commit, verifies three things:
//
//  1. Stream equality: the committed instruction is exactly the next
//     in-order instruction (PC, registers, address, branch outcome — the
//     whole record). Any scheduling bug that commits a wrong, duplicated,
//     or skipped instruction surfaces here.
//  2. Load values: the simulator carries no data, so the oracle gives
//     every byte of memory an identity — the sequence number of the store
//     that last wrote it. A committed load's observed bytes (from its
//     forwarding source, or from the cache state visible at its final
//     issue cycle) must equal the bytes the architectural in-order model
//     holds. A premature load that slipped past the policy observes a
//     stale identity and is caught at its commit.
//  3. Store order: stores drain at commit in program order; each updates
//     the byte identities, so an out-of-order drain would surface as a
//     later load-value divergence.
//
// The oracle's memory model is exact, keyed by quad word. Aligned accesses
// never cross a quad-word boundary (the ISA requires addr % size == 0 and
// size ≤ 8), so each access touches exactly one bucket.
type Oracle struct {
	ref  InstSource
	ring *EventRing

	commits uint64
	cycle   uint64 // cycle of the most recent commit fed to the oracle

	// Architectural memory: quad word -> byte identities + pending
	// committed writes that in-flight loads might still legitimately miss.
	mem map[uint64]*qwState

	// Last committed writer of each architectural register (diagnostics).
	regWriter [isa.NumRegs]uint64

	// In-flight issued loads: age -> issue cycle. Bounds how far committed
	// writes can be folded into the base image.
	inflight map[uint64]uint64

	loadsChecked  uint64
	storesTracked uint64
}

// writeRec is one committed store's write to a quad word, kept until no
// in-flight load could have issued before it drained.
type writeRec struct {
	seq         uint64 // store sequence number (byte identity)
	commitCycle uint64 // cycle the store drained to the cache
	off, size   uint8  // byte range within the quad word
}

// qwState is the oracle's image of one quad word: the settled byte
// identities plus the recent committed writes not yet folded in.
type qwState struct {
	base [8]uint64
	recs []writeRec
}

// compactThreshold bounds recs growth before a fold-in attempt.
const compactThreshold = 16

// NewOracle builds the reference model over its own copy of the workload
// stream. ring may be nil; when set, error reports carry its snapshot.
func NewOracle(ref InstSource, ring *EventRing) *Oracle {
	return &Oracle{
		ref:      ref,
		ring:     ring,
		mem:      make(map[uint64]*qwState),
		inflight: make(map[uint64]uint64),
	}
}

// LoadIssued records that the load with the given age issued at the given
// cycle. The core calls it at every successful load issue; the recorded
// cycle pins how much committed-store history the oracle must retain.
func (o *Oracle) LoadIssued(age, cycle uint64) {
	o.inflight[age] = cycle
}

// Squashed drops in-flight load records with age >= fromAge. The core
// calls it on every squash, before the ages are recycled.
func (o *Oracle) Squashed(fromAge uint64) {
	for age := range o.inflight {
		if age >= fromAge {
			delete(o.inflight, age)
		}
	}
}

// Commit verifies one committed instruction. op is the instruction's
// memory record (nil for non-memory ops); age is its ROB age and cycle
// the commit cycle. A non-nil return is the first divergence; the
// oracle's state is then unspecified and the simulation should stop.
func (o *Oracle) Commit(in isa.Inst, op *lsq.MemOp, age, cycle uint64) error {
	o.cycle = cycle
	want := o.ref.Next()
	if in != want {
		err := o.fail(KindStreamDivergence, in, age, in.String(), want.String())
		o.commits++
		return err
	}
	o.commits++
	switch {
	case in.Op.IsLoad():
		if err := o.commitLoad(in, op, age); err != nil {
			return err
		}
	case in.Op.IsStore():
		o.commitStore(in, cycle)
	}
	if in.HasDest() {
		o.regWriter[in.Dest] = in.Seq
	}
	return nil
}

// commitLoad checks the load's observed bytes against the architectural
// image and retires its in-flight record.
func (o *Oracle) commitLoad(in isa.Inst, op *lsq.MemOp, age uint64) error {
	o.loadsChecked++
	if op != nil {
		defer delete(o.inflight, op.Age)
	}
	if op == nil || !op.Issued {
		return o.fail(KindLoadValue, in, age, "load committed without issuing", "an issued load")
	}
	st := o.mem[isa.QuadWord(in.Addr)]
	off := uint8(in.Addr & 7)
	want := o.bytesAt(st, off, in.Size, ^uint64(0)) // full program-order image
	var got [8]uint64
	if op.FwdSeq != 0 {
		// Forwarded: every byte carries the source store's identity.
		for i := range got[:in.Size] {
			got[i] = op.FwdSeq
		}
	} else {
		// Cache read: the load observes stores drained no later than its
		// final issue cycle (commit runs before issue within a cycle, so a
		// store committed at cycle C is visible to a load issuing at C).
		got = o.bytesAt(st, off, in.Size, op.IssueCycle)
	}
	if got != want {
		return o.fail(KindLoadValue, in, age,
			formatBytes(got, in.Size)+fwdNote(op), formatBytes(want, in.Size))
	}
	if st != nil && len(st.recs) > compactThreshold {
		o.compact(st)
	}
	return nil
}

// commitStore records the store's byte identities and prunes history.
func (o *Oracle) commitStore(in isa.Inst, cycle uint64) {
	o.storesTracked++
	qw := isa.QuadWord(in.Addr)
	st := o.mem[qw]
	if st == nil {
		st = &qwState{}
		o.mem[qw] = st
	}
	st.recs = append(st.recs, writeRec{
		seq:         in.Seq,
		commitCycle: cycle,
		off:         uint8(in.Addr & 7),
		size:        in.Size,
	})
	if len(st.recs) > compactThreshold {
		o.compact(st)
	}
}

// bytesAt materializes size byte identities starting at off: the base
// image plus every recorded write with commitCycle <= visibleBy, applied
// in commit order.
func (o *Oracle) bytesAt(st *qwState, off, size uint8, visibleBy uint64) [8]uint64 {
	var out [8]uint64
	if st == nil {
		return out
	}
	img := st.base
	for _, r := range st.recs {
		if r.commitCycle > visibleBy {
			continue
		}
		for b := r.off; b < r.off+r.size; b++ {
			img[b] = r.seq
		}
	}
	copy(out[:size], img[off:off+size])
	return out
}

// compact folds writes no in-flight (or future) load can miss into the
// base image. The safe horizon is the earliest issue cycle among issued
// in-flight loads: loads not yet issued will issue at the current cycle or
// later, and the visibility rule is commitCycle <= issueCycle.
func (o *Oracle) compact(st *qwState) {
	safe := o.cycle
	for _, c := range o.inflight {
		if c < safe {
			safe = c
		}
	}
	kept := st.recs[:0]
	for _, r := range st.recs {
		if r.commitCycle <= safe {
			for b := r.off; b < r.off+r.size; b++ {
				st.base[b] = r.seq
			}
		} else {
			kept = append(kept, r)
		}
	}
	st.recs = kept
}

// RegWriter returns the sequence number of the last committed writer of
// an architectural register (0 = still the initial value).
func (o *Oracle) RegWriter(reg int16) uint64 {
	if reg < 0 || int(reg) >= len(o.regWriter) {
		return 0
	}
	return o.regWriter[reg]
}

// Checked returns how many instructions and loads the oracle verified.
func (o *Oracle) Checked() (insts, loads uint64) { return o.commits, o.loadsChecked }

// fail builds a SoundnessError with the current position and the event
// window.
func (o *Oracle) fail(kind Kind, in isa.Inst, age uint64, got, want string) *SoundnessError {
	return &SoundnessError{
		Kind:   kind,
		Age:    age,
		PC:     in.PC,
		Seq:    in.Seq,
		Cycle:  o.cycle,
		Commit: o.commits,
		Got:    got,
		Want:   want,
		Events: o.ring.Snapshot(),
	}
}

// formatBytes renders byte identities as store sequence numbers.
func formatBytes(b [8]uint64, size uint8) string {
	parts := make([]string, size)
	for i := uint8(0); i < size; i++ {
		if b[i] == 0 {
			parts[i] = "init"
		} else {
			parts[i] = fmt.Sprintf("s%d", b[i])
		}
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// fwdNote annotates where a load's observed value came from.
func fwdNote(op *lsq.MemOp) string {
	if op.FwdSeq != 0 {
		return fmt.Sprintf(" (forwarded from store seq %d)", op.FwdSeq)
	}
	return fmt.Sprintf(" (cache read at issue cycle %d)", op.IssueCycle)
}
