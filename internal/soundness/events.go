package soundness

import (
	"fmt"
	"strings"
)

// Event is one recorded pipeline event: the same vocabulary as the
// pipeline trace (FE fetch, DI dispatch, IS issue, RJ reject, CP complete,
// CM commit, SQH squash, RPL replay, REC recovery, FLT injected fault),
// kept as pre-rendered strings so recording never retains simulator state.
type Event struct {
	Cycle uint64
	Kind  string
	Age   uint64
	Inst  string // rendered instruction, empty for global marks
	Extra string
}

// String renders the event as one trace line.
func (ev Event) String() string {
	s := fmt.Sprintf("cyc=%-8d %-3s", ev.Cycle, ev.Kind)
	if ev.Inst != "" {
		s += fmt.Sprintf(" age=%-6d %s", ev.Age, ev.Inst)
	}
	if ev.Extra != "" {
		s += " " + ev.Extra
	}
	return s
}

// EventRing is a fixed-capacity ring buffer of the most recent pipeline
// events, attached to error reports so a divergence arrives with its
// immediate history. The zero value is unusable; use NewEventRing.
type EventRing struct {
	buf  []Event
	next int
	full bool
}

// DefaultRingSize is the event window attached to soundness errors.
const DefaultRingSize = 64

// NewEventRing builds a ring holding the last n events (n < 1 uses the
// default size).
func NewEventRing(n int) *EventRing {
	if n < 1 {
		n = DefaultRingSize
	}
	return &EventRing{buf: make([]Event, n)}
}

// Record appends an event, evicting the oldest once full.
func (r *EventRing) Record(ev Event) {
	r.buf[r.next] = ev
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
}

// Snapshot returns the buffered events oldest-first. The slice is a copy;
// mutating it does not affect the ring.
func (r *EventRing) Snapshot() []Event {
	if r == nil {
		return nil
	}
	var out []Event
	if r.full {
		out = append(out, r.buf[r.next:]...)
	}
	out = append(out, r.buf[:r.next]...)
	return out
}

// Len reports how many events are buffered.
func (r *EventRing) Len() int {
	if r == nil {
		return 0
	}
	if r.full {
		return len(r.buf)
	}
	return r.next
}

// FormatEvents renders events one per line, oldest first.
func FormatEvents(evs []Event) string {
	var b strings.Builder
	for _, ev := range evs {
		b.WriteString("  ")
		b.WriteString(ev.String())
		b.WriteByte('\n')
	}
	return b.String()
}
