// Package soundness is the simulator's verification layer: a lockstep
// architectural oracle that checks every committed instruction against an
// in-order reference model, a deterministic microarchitectural fault
// injector that stresses the replay machinery, and the diagnostic types
// (typed errors, pipeline event ring, state dumps) the core uses to report
// what went wrong instead of panicking.
//
// The package deliberately imports only isa/lsq/stats so internal/core can
// depend on it without a cycle; the core feeds the oracle through narrow
// hooks (Commit, LoadIssued, Squashed) and builds StateDumps itself.
package soundness

import (
	"fmt"
	"strings"
)

// Kind classifies a soundness violation.
type Kind string

// Violation kinds.
const (
	// KindStreamDivergence: the committed instruction stream diverged from
	// the in-order reference model (wrong instruction reached commit).
	KindStreamDivergence Kind = "stream-divergence"
	// KindLoadValue: a committed load observed a memory value different
	// from what the architectural memory model holds (a mis-speculated
	// load slipped past the dependence-checking policy).
	KindLoadValue Kind = "load-value"
	// KindWrongPathCommit: a wrong-path instruction reached the ROB head.
	KindWrongPathCommit Kind = "wrong-path-commit"
	// KindInvariant: a periodic CheckInvariants sweep failed.
	KindInvariant Kind = "invariant"
)

// SoundnessError reports the first bad commit (or invariant failure) with
// enough context to debug it: the dynamic age, PC and sequence number of
// the offending instruction, both the observed and the architecturally
// correct value, and a ring-buffer snapshot of the pipeline events leading
// up to the divergence.
type SoundnessError struct {
	Kind   Kind
	Age    uint64
	PC     uint64
	Seq    uint64
	Cycle  uint64
	Commit uint64 // committed-instruction index of the bad commit
	Got    string
	Want   string
	Events []Event
}

// Error renders the violation with the trailing event window.
func (e *SoundnessError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "soundness: %s at commit #%d (cycle %d, age %d, pc %#x, seq %d): got %s, want %s",
		e.Kind, e.Commit, e.Cycle, e.Age, e.PC, e.Seq, e.Got, e.Want)
	if len(e.Events) > 0 {
		fmt.Fprintf(&b, "\nlast %d pipeline events:\n%s", len(e.Events), FormatEvents(e.Events))
	}
	return b.String()
}

// WatchdogError reports a pipeline that stopped making forward progress:
// no instruction committed for more than the configured cycle budget. It
// wraps a full pipeline-state dump instead of crashing the process.
type WatchdogError struct {
	Budget uint64 // allowed cycles without a commit
	Cycle  uint64 // cycle the watchdog tripped
	Dump   *StateDump
}

// Error renders the trip and the state dump.
func (e *WatchdogError) Error() string {
	stalled := e.Cycle
	if e.Dump != nil {
		stalled = e.Cycle - e.Dump.LastCommitCycle
	}
	s := fmt.Sprintf("core watchdog: no commit for %d cycles (budget %d) at cycle %d",
		stalled, e.Budget, e.Cycle)
	if e.Dump != nil {
		s += "\n" + e.Dump.String()
	}
	return s
}
