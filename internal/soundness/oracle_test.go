package soundness

import (
	"errors"
	"strings"
	"testing"

	"dmdc/internal/energy"
	"dmdc/internal/isa"
	"dmdc/internal/lsq"
)

// sliceSource replays a fixed instruction slice, padding with nops.
type sliceSource struct {
	insts []isa.Inst
	i     int
}

func (s *sliceSource) Next() isa.Inst {
	if s.i >= len(s.insts) {
		return isa.Inst{Op: isa.OpNop}
	}
	in := s.insts[s.i]
	s.i++
	return in
}

func store(seq, addr uint64, size uint8) isa.Inst {
	return isa.Inst{Seq: seq, PC: 0x1000 + seq*4, Op: isa.OpStore, Src1: 1, Src2: 2, Addr: addr, Size: size}
}

func load(seq, addr uint64, size uint8) isa.Inst {
	return isa.Inst{Seq: seq, PC: 0x1000 + seq*4, Op: isa.OpLoad, Dest: 3, Src1: 1, Addr: addr, Size: size}
}

func memOp(age, issueCycle, fwdSeq uint64) *lsq.MemOp {
	return &lsq.MemOp{Age: age, IsLoad: true, Issued: true, IssueCycle: issueCycle, FwdSeq: fwdSeq}
}

func TestOracleCleanStream(t *testing.T) {
	prog := []isa.Inst{
		store(1, 0x100, 8),
		load(2, 0x100, 8),
		store(3, 0x108, 4),
		load(4, 0x108, 4),
		load(5, 0x200, 8), // untouched memory: all-init is correct
	}
	o := NewOracle(&sliceSource{insts: prog}, nil)
	cycle := uint64(10)
	var age uint64 = 100
	for _, in := range prog {
		var op *lsq.MemOp
		if in.Op.IsLoad() {
			// Issue strictly after every older store committed.
			op = memOp(age, cycle, 0)
			o.LoadIssued(age, cycle)
		}
		if err := o.Commit(in, op, age, cycle); err != nil {
			t.Fatalf("clean commit of seq %d failed: %v", in.Seq, err)
		}
		age++
		cycle += 5
	}
	insts, loads := o.Checked()
	if insts != 5 || loads != 3 {
		t.Errorf("Checked() = (%d, %d), want (5, 3)", insts, loads)
	}
	if o.RegWriter(3) != 5 {
		t.Errorf("RegWriter(3) = %d, want 5", o.RegWriter(3))
	}
}

func TestOracleStreamDivergence(t *testing.T) {
	prog := []isa.Inst{
		{Seq: 1, PC: 0x1000, Op: isa.OpIAlu, Dest: 4, Src1: 1, Src2: 2},
	}
	o := NewOracle(&sliceSource{insts: prog}, nil)
	wrong := prog[0]
	wrong.PC = 0x2000 // committed instruction differs from the reference
	err := o.Commit(wrong, nil, 7, 50)
	var serr *SoundnessError
	if !errors.As(err, &serr) {
		t.Fatalf("want *SoundnessError, got %v", err)
	}
	if serr.Kind != KindStreamDivergence {
		t.Errorf("Kind = %s, want %s", serr.Kind, KindStreamDivergence)
	}
	if serr.Age != 7 || serr.Cycle != 50 || serr.Commit != 0 {
		t.Errorf("context = age %d cycle %d commit %d", serr.Age, serr.Cycle, serr.Commit)
	}
}

func TestOracleCatchesStaleLoad(t *testing.T) {
	prog := []isa.Inst{
		store(1, 0x100, 8),
		load(2, 0x100, 8),
	}
	o := NewOracle(&sliceSource{insts: prog}, NewEventRing(8))
	o.ring.Record(Event{Cycle: 5, Kind: "IS", Age: 11, Inst: "2: load"})
	// The load issued at cycle 5, before the store drained at cycle 10:
	// it read the cache too early and nothing replayed it.
	o.LoadIssued(11, 5)
	if err := o.Commit(prog[0], nil, 10, 10); err != nil {
		t.Fatal(err)
	}
	err := o.Commit(prog[1], memOp(11, 5, 0), 11, 12)
	var serr *SoundnessError
	if !errors.As(err, &serr) {
		t.Fatalf("want *SoundnessError, got %v", err)
	}
	if serr.Kind != KindLoadValue {
		t.Errorf("Kind = %s, want %s", serr.Kind, KindLoadValue)
	}
	msg := err.Error()
	for _, want := range []string{"load-value", "[init init", "[s1 s1", "cache read at issue cycle 5", "pipeline events"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error missing %q:\n%s", want, msg)
		}
	}
}

func TestOracleForwardedLoad(t *testing.T) {
	prog := []isa.Inst{
		store(1, 0x100, 8),
		load(2, 0x100, 8),
		store(3, 0x300, 8),
		load(4, 0x300, 8),
	}
	o := NewOracle(&sliceSource{insts: prog}, nil)
	// Load 2 issued before store 1 drained but forwarded from it in the SQ:
	// observed bytes all carry seq 1, matching the architectural image.
	o.LoadIssued(11, 5)
	if err := o.Commit(prog[0], nil, 10, 10); err != nil {
		t.Fatal(err)
	}
	if err := o.Commit(prog[1], memOp(11, 5, 1), 11, 12); err != nil {
		t.Fatalf("correctly forwarded load flagged: %v", err)
	}
	// Load 4 claims forwarding from the wrong store: caught.
	o.LoadIssued(13, 20)
	if err := o.Commit(prog[2], nil, 12, 20); err != nil {
		t.Fatal(err)
	}
	err := o.Commit(prog[3], memOp(13, 20, 1), 13, 22)
	var serr *SoundnessError
	if !errors.As(err, &serr) || serr.Kind != KindLoadValue {
		t.Fatalf("mis-forwarded load not caught: %v", err)
	}
	if !strings.Contains(err.Error(), "forwarded from store seq 1") {
		t.Errorf("error should name the forwarding source:\n%v", err)
	}
}

func TestOracleUnissuedLoad(t *testing.T) {
	prog := []isa.Inst{load(1, 0x100, 8)}
	o := NewOracle(&sliceSource{insts: prog}, nil)
	err := o.Commit(prog[0], &lsq.MemOp{Age: 5, IsLoad: true}, 5, 10)
	var serr *SoundnessError
	if !errors.As(err, &serr) || serr.Kind != KindLoadValue {
		t.Fatalf("unissued load not caught: %v", err)
	}
	if err := o.Commit(prog[0], nil, 5, 10); err == nil {
		t.Fatal("nil MemOp for a load should fail")
	}
}

func TestOraclePartialOverlap(t *testing.T) {
	// A one-byte store into the middle of a quad word, then a full-width
	// load: the observed image must splice the byte identity over the base.
	prog := []isa.Inst{
		store(1, 0x100, 8),
		store(2, 0x103, 1),
		load(3, 0x100, 8),
		load(4, 0x103, 1),
	}
	o := NewOracle(&sliceSource{insts: prog}, nil)
	if err := o.Commit(prog[0], nil, 1, 10); err != nil {
		t.Fatal(err)
	}
	if err := o.Commit(prog[1], nil, 2, 20); err != nil {
		t.Fatal(err)
	}
	o.LoadIssued(3, 25)
	if err := o.Commit(prog[2], memOp(3, 25, 0), 3, 26); err != nil {
		t.Fatalf("spliced load flagged: %v", err)
	}
	// The narrow load forwarded from the narrow store is also fine.
	o.LoadIssued(4, 25)
	if err := o.Commit(prog[3], memOp(4, 25, 2), 4, 27); err != nil {
		t.Fatalf("narrow forwarded load flagged: %v", err)
	}
}

func TestOracleCompaction(t *testing.T) {
	// Many stores to one quad word force compaction; a late load must still
	// see the final image, and a pinned in-flight load must still see the
	// image at its own issue cycle.
	var prog []isa.Inst
	n := uint64(3 * compactThreshold)
	for seq := uint64(1); seq <= n; seq++ {
		prog = append(prog, store(seq, 0x100, 8))
	}
	prog = append(prog, load(n+1, 0x100, 8))
	o := NewOracle(&sliceSource{insts: prog}, nil)

	// Pin the horizon: an issued in-flight load from cycle 10 forces recs
	// with commitCycle > 10 to stay un-folded until it retires.
	o.LoadIssued(999, 10)
	for i := uint64(0); i < n; i++ {
		if err := o.Commit(prog[i], nil, i+1, 10*(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	st := o.mem[isa.QuadWord(0x100)]
	if len(st.recs) < compactThreshold {
		t.Fatalf("pinned horizon should have prevented folding, recs=%d", len(st.recs))
	}
	// The pinned load observes only the first store (committed at cycle 10).
	got := o.bytesAt(st, 0, 8, 10)
	for _, b := range got {
		if b != 1 {
			t.Fatalf("pinned view = %v, want all s1", got)
		}
	}
	// Retire the pin; the next commit compacts and the final load is clean.
	o.Squashed(999)
	cycle := 10 * (n + 1)
	o.LoadIssued(n+1, cycle)
	if err := o.Commit(prog[n], memOp(n+1, cycle, 0), n+1, cycle+1); err != nil {
		t.Fatalf("post-compaction load flagged: %v", err)
	}
	if len(st.recs) > compactThreshold {
		t.Errorf("compaction did not shrink recs: %d", len(st.recs))
	}
}

func TestOracleSquashDropsInflight(t *testing.T) {
	o := NewOracle(&sliceSource{}, nil)
	o.LoadIssued(10, 100)
	o.LoadIssued(20, 200)
	o.LoadIssued(30, 300)
	o.Squashed(20)
	if _, ok := o.inflight[10]; !ok {
		t.Error("older in-flight load dropped by squash")
	}
	for _, age := range []uint64{20, 30} {
		if _, ok := o.inflight[age]; ok {
			t.Errorf("squashed in-flight load age %d survived", age)
		}
	}
}

func TestUnsoundWrapperSuppresses(t *testing.T) {
	inner := lsq.Must(lsq.NewCAM(lsq.CAMConfig{LQSize: 8}, energy.Disabled()))
	u := NewUnsound(inner)
	if u.Name() != "unsound(cam)" {
		t.Errorf("Name() = %q", u.Name())
	}
	op := &lsq.MemOp{Age: 1, IsLoad: true, Addr: 0x100, Size: 8, Issued: true, SafeAtIssue: false, Unsafe: true}
	u.LoadDispatch(op)
	// Whatever the inner policy demands, the wrapper returns nil.
	if r := u.LoadCommit(op); r != nil {
		t.Errorf("unsound wrapper leaked a replay: %+v", r)
	}
}
