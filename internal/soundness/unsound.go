package soundness

import "dmdc/internal/lsq"

// Unsound wraps a policy and suppresses every replay it demands, making
// the wrapped scheme deliberately broken: premature loads commit stale
// values unchecked. It exists to prove the oracle works — a run with an
// Unsound policy and the oracle enabled must fail with a load-value
// SoundnessError naming the first bad commit — and as the "unsound"
// policy selectable from cmd/dmdcsim for demonstrations.
type Unsound struct {
	lsq.Policy
	// Suppressed counts the replays the wrapper swallowed.
	Suppressed uint64
}

// NewUnsound wraps p.
func NewUnsound(p lsq.Policy) *Unsound { return &Unsound{Policy: p} }

// Name labels the wrapped policy.
func (u *Unsound) Name() string { return "unsound(" + u.Policy.Name() + ")" }

// StoreResolve drops the inner policy's replay demand.
func (u *Unsound) StoreResolve(op *lsq.MemOp) *lsq.Replay {
	if r := u.Policy.StoreResolve(op); r != nil {
		u.Suppressed++
	}
	return nil
}

// LoadCommit drops the inner policy's replay demand.
func (u *Unsound) LoadCommit(op *lsq.MemOp) *lsq.Replay {
	if r := u.Policy.LoadCommit(op); r != nil {
		u.Suppressed++
	}
	return nil
}
