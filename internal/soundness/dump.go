package soundness

import (
	"fmt"
	"strings"
)

// ROBSlot is one reorder-buffer entry in a StateDump.
type ROBSlot struct {
	Age       uint64
	State     string // waiting | issued | completed
	WrongPath bool
	NotBefore uint64 // earliest re-issue cycle, 0 if none
	Inst      string // rendered instruction
}

// String renders the slot as one dump line.
func (s ROBSlot) String() string {
	flags := ""
	if s.WrongPath {
		flags = " WP"
	}
	nb := ""
	if s.NotBefore > 0 {
		nb = fmt.Sprintf(" notBefore=%d", s.NotBefore)
	}
	return fmt.Sprintf("age=%-6d %-9s%s%s  %s", s.Age, s.State, flags, nb, s.Inst)
}

// StateDump is a human-readable snapshot of the pipeline, produced by the
// core when the watchdog trips (and on demand for diagnostics): occupancy
// of every major structure, a window of the ROB from the head, the active
// policy's counters, the invariant checker's verdict, and the trailing
// pipeline events.
type StateDump struct {
	Cycle           uint64
	Committed       uint64
	LastCommitCycle uint64

	HeadAge       uint64
	ROBCount      int
	ROBSize       int
	IQInt, IQFP   int
	SQLen         int
	InflightLoads int
	FetchQLen     int
	ReplayQLen    int
	FetchResume   uint64 // fetch stalled until this cycle (0 = not stalled)
	WrongPathMode bool

	ROB []ROBSlot // window from the ROB head

	Policy       string
	PolicyState  string // rendered policy counters
	InvariantErr string // CheckInvariants failure text, empty if clean
	Events       []Event
}

// DumpROBWindow bounds the ROB slice included in a dump.
const DumpROBWindow = 16

// String renders the full dump.
func (d *StateDump) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "pipeline state at cycle %d (%d committed, last commit at cycle %d):\n",
		d.Cycle, d.Committed, d.LastCommitCycle)
	fmt.Fprintf(&b, "  rob %d/%d head-age=%d | iq int=%d fp=%d | sq=%d | inflight-loads=%d | fetchq=%d replayq=%d",
		d.ROBCount, d.ROBSize, d.HeadAge, d.IQInt, d.IQFP, d.SQLen, d.InflightLoads, d.FetchQLen, d.ReplayQLen)
	if d.FetchResume > d.Cycle {
		fmt.Fprintf(&b, " | fetch-stalled-until=%d", d.FetchResume)
	}
	if d.WrongPathMode {
		b.WriteString(" | fetching-wrong-path")
	}
	b.WriteByte('\n')
	if len(d.ROB) > 0 {
		fmt.Fprintf(&b, "  rob head window (%d of %d):\n", len(d.ROB), d.ROBCount)
		for _, slot := range d.ROB {
			fmt.Fprintf(&b, "    %s\n", slot)
		}
	}
	if d.Policy != "" {
		fmt.Fprintf(&b, "  policy %s", d.Policy)
		if d.PolicyState != "" {
			fmt.Fprintf(&b, ": %s", d.PolicyState)
		}
		b.WriteByte('\n')
	}
	if d.InvariantErr != "" {
		fmt.Fprintf(&b, "  invariants: FAILED: %s\n", d.InvariantErr)
	} else {
		b.WriteString("  invariants: ok\n")
	}
	if len(d.Events) > 0 {
		fmt.Fprintf(&b, "  last %d pipeline events:\n%s", len(d.Events), FormatEvents(d.Events))
	}
	return b.String()
}
