package dserve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"dmdc/internal/config"
	"dmdc/internal/experiments"
	"dmdc/internal/resultcache"
	"dmdc/internal/telemetry"
)

// quickSpec is a small real simulation (a few ms).
func quickSpec(bench string) experiments.JobSpec {
	return experiments.JobSpec{
		Machine:   config.Config2(),
		Policy:    "baseline",
		Benchmark: bench,
		Insts:     5_000,
	}
}

// slowSpec is a simulation big enough to still be running while a test
// pokes at the server (hundreds of ms at least).
func slowSpec(bench string) experiments.JobSpec {
	return experiments.JobSpec{
		Machine:   config.Config2(),
		Policy:    "baseline",
		Benchmark: bench,
		Insts:     200_000_000,
	}
}

// submit POSTs one batch and decodes the per-job statuses.
func submit(t *testing.T, url string, specs ...experiments.JobSpec) (ListResponse, int) {
	t.Helper()
	body, err := json.Marshal(SubmitRequest{Jobs: specs})
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	defer resp.Body.Close()
	var lr ListResponse
	if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
		t.Fatalf("decode submit response (%s): %v", resp.Status, err)
	}
	return lr, resp.StatusCode
}

// getStatus GETs one job's status, optionally long-polling.
func getStatus(t *testing.T, url, id, wait string) JobStatus {
	t.Helper()
	u := url + "/v1/jobs/" + id
	if wait != "" {
		u += "?wait=" + wait
	}
	resp, err := http.Get(u)
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	defer resp.Body.Close()
	var js JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&js); err != nil {
		t.Fatalf("decode status: %v", err)
	}
	return js
}

// TestServerLifecycle drives one job through submit → long-poll → result
// and checks the health counters.
func TestServerLifecycle(t *testing.T) {
	t.Parallel()
	srv := newTestServer(t, ServerConfig{Workers: 2})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	spec := quickSpec("gcc")
	lr, code := submit(t, ts.URL, spec)
	if code != http.StatusOK || len(lr.Jobs) != 1 {
		t.Fatalf("submit: code %d, %d jobs", code, len(lr.Jobs))
	}
	if lr.Jobs[0].ID != spec.CacheKey() {
		t.Fatalf("job id %q, want the spec's cache key", lr.Jobs[0].ID)
	}
	js := getStatus(t, ts.URL, lr.Jobs[0].ID, "30s")
	if js.Status != StatusDone {
		t.Fatalf("after long poll: %+v", js)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + js.ID + "/result")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("result: %v %v", err, resp)
	}
	resp.Body.Close()

	var h Health
	hr, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	defer hr.Body.Close()
	if err := json.NewDecoder(hr.Body).Decode(&h); err != nil {
		t.Fatalf("decode health: %v", err)
	}
	if !h.OK || h.Done != 1 || h.Executed != 1 {
		t.Fatalf("health: %+v", h)
	}
}

// TestServerIdempotentResubmit pins content-addressed admission: the same
// spec submitted repeatedly lands on one job and simulates exactly once.
func TestServerIdempotentResubmit(t *testing.T) {
	t.Parallel()
	srv := newTestServer(t, ServerConfig{Workers: 2})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	spec := quickSpec("swim")
	first, _ := submit(t, ts.URL, spec)
	// Resubmitting (even in a batch that repeats the spec) reuses the job.
	again, _ := submit(t, ts.URL, spec, spec)
	for _, js := range again.Jobs {
		if js.ID != first.Jobs[0].ID {
			t.Fatalf("resubmit created a new job: %q vs %q", js.ID, first.Jobs[0].ID)
		}
	}
	if js := getStatus(t, ts.URL, first.Jobs[0].ID, "30s"); js.Status != StatusDone {
		t.Fatalf("job did not finish: %+v", js)
	}
	if got := srv.Executed(); got != 1 {
		t.Fatalf("executed %d simulations for one unique spec, want 1", got)
	}
}

// TestServerCacheHit pins the cache path: a second server sharing the
// result cache answers the same spec without simulating.
func TestServerCacheHit(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	cache, err := resultcache.Open(dir)
	if err != nil {
		t.Fatalf("cache: %v", err)
	}
	spec := quickSpec("mcf")

	srv1 := newTestServer(t, ServerConfig{Workers: 1, Cache: cache})
	ts1 := httptest.NewServer(srv1)
	lr, _ := submit(t, ts1.URL, spec)
	if js := getStatus(t, ts1.URL, lr.Jobs[0].ID, "30s"); js.Status != StatusDone {
		t.Fatalf("warmup job: %+v", js)
	}
	ts1.Close()
	srv1.Close()

	cache2, err := resultcache.Open(dir)
	if err != nil {
		t.Fatalf("cache2: %v", err)
	}
	srv2 := newTestServer(t, ServerConfig{Workers: 1, Cache: cache2})
	defer srv2.Close()
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()
	lr2, _ := submit(t, ts2.URL, spec)
	if js := lr2.Jobs[0]; js.Status != StatusDone || !js.Cached {
		t.Fatalf("shared-cache submit not answered from cache: %+v", js)
	}
	if got := srv2.Executed(); got != 0 {
		t.Fatalf("cache-hit server executed %d simulations, want 0", got)
	}
}

// TestServerBackpressure fills a tiny server and requires rejection (not
// blocking, not loss) for the overflow, including the all-rejected 503.
func TestServerBackpressure(t *testing.T) {
	t.Parallel()
	srv := newTestServer(t, ServerConfig{Workers: 1, QueueDepth: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Occupy the single worker, then wait until it is actually running so
	// the queue state is deterministic.
	running, _ := submit(t, ts.URL, slowSpec("gzip"))
	deadline := time.Now().Add(30 * time.Second)
	for {
		if js := getStatus(t, ts.URL, running.Jobs[0].ID, ""); js.Status == StatusRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first job never started running")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Fill the one queue slot.
	queued, _ := submit(t, ts.URL, slowSpec("gcc"))
	if queued.Jobs[0].Status != StatusQueued {
		t.Fatalf("second job: %+v", queued.Jobs[0])
	}
	// Overflow: rejected per-job and 503 at the HTTP layer.
	over, code := submit(t, ts.URL, slowSpec("swim"))
	if over.Jobs[0].Status != StatusRejected {
		t.Fatalf("overflow job: %+v", over.Jobs[0])
	}
	if code != http.StatusServiceUnavailable {
		t.Fatalf("all-rejected submit returned %d, want 503", code)
	}
	// A mixed batch (one duplicate of an admitted job, one fresh) is not a
	// total rejection, so it stays 200.
	mixed, code := submit(t, ts.URL, slowSpec("gcc"), slowSpec("mcf"))
	if code != http.StatusOK {
		t.Fatalf("mixed submit returned %d, want 200", code)
	}
	if mixed.Jobs[0].Status != StatusQueued || mixed.Jobs[1].Status != StatusRejected {
		t.Fatalf("mixed batch: %+v", mixed.Jobs)
	}
}

// TestServerCloseFailsInFlightRetryably pins the drain contract: closing
// a server gives every admitted job a retryable terminal state — running
// jobs fail (cancelled), admitted-unstarted jobs are rejected — so a
// dispatcher reroutes them immediately instead of hanging a long poll
// until timeout. Nothing is silently lost.
func TestServerCloseFailsInFlightRetryably(t *testing.T) {
	t.Parallel()
	srv := newTestServer(t, ServerConfig{Workers: 1, QueueDepth: 4})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	lr, _ := submit(t, ts.URL, slowSpec("gzip"), slowSpec("gcc"))
	// Wait until one job is actually running, so close deterministically
	// sees one running + one queued job.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if js := getStatus(t, ts.URL, lr.Jobs[0].ID, ""); js.Status == StatusRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first job never started running")
		}
		time.Sleep(5 * time.Millisecond)
	}
	srv.Close()
	running := getStatus(t, ts.URL, lr.Jobs[0].ID, "30s")
	if running.Status != StatusFailed || !running.Retryable {
		t.Fatalf("after close, running job: %+v, want retryable failure", running)
	}
	queued := getStatus(t, ts.URL, lr.Jobs[1].ID, "30s")
	if queued.Status != StatusRejected || !queued.Retryable {
		t.Fatalf("after close, queued job: %+v, want retryable rejection", queued)
	}
	// New submissions are rejected outright.
	late, code := submit(t, ts.URL, quickSpec("swim"))
	if late.Jobs[0].Status != StatusRejected || code != http.StatusServiceUnavailable {
		t.Fatalf("submit after close: %+v code %d", late.Jobs[0], code)
	}
}

// TestServerRejectsInvalid pins validation: a malformed spec fails
// deterministically (non-retryable) without consuming queue space.
func TestServerRejectsInvalid(t *testing.T) {
	t.Parallel()
	srv := newTestServer(t, ServerConfig{Workers: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	bad := experiments.JobSpec{Policy: "no-such-policy", Benchmark: "gcc", Insts: 1}
	lr, _ := submit(t, ts.URL, bad)
	if js := lr.Jobs[0]; js.Status != StatusFailed || js.Retryable {
		t.Fatalf("invalid spec: %+v, want permanent failure", js)
	}
	if resp, err := http.Get(ts.URL + "/v1/jobs/no-such-id"); err != nil || resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job lookup: %v %v", err, resp)
	} else {
		resp.Body.Close()
	}
}

// TestServerTelemetryEndpoint pins that a telemetry-enabled server
// exposes per-job series keyed by job ID, and a plain server 404s.
func TestServerTelemetryEndpoint(t *testing.T) {
	t.Parallel()
	srv := newTestServer(t, ServerConfig{Workers: 1, Telemetry: &telemetry.Config{Stride: 1024}})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	lr, _ := submit(t, ts.URL, quickSpec("gcc"))
	if js := getStatus(t, ts.URL, lr.Jobs[0].ID, "30s"); js.Status != StatusDone {
		t.Fatalf("job: %+v", js)
	}
	resp, err := http.Get(fmt.Sprintf("%s/v1/telemetry?job=%s", ts.URL, lr.Jobs[0].ID))
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("telemetry fetch: %v %v", err, resp)
	}
	resp.Body.Close()

	plain := newTestServer(t, ServerConfig{Workers: 1})
	defer plain.Close()
	tp := httptest.NewServer(plain)
	defer tp.Close()
	if resp, err := http.Get(tp.URL + "/v1/telemetry"); err != nil || resp.StatusCode != http.StatusNotFound {
		t.Fatalf("telemetry on plain server: %v %v", err, resp)
	} else {
		resp.Body.Close()
	}
}
