package dserve

import (
	"net/http"
	"sync/atomic"
	"testing"

	"dmdc/internal/resultcache"
)

// newTestServer builds a server, failing the test on a resume error.
func newTestServer(t *testing.T, cfg ServerConfig) *Server {
	t.Helper()
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	return s
}

// openTestCache opens a fresh result cache under the test's temp dir.
func openTestCache(t *testing.T) *resultcache.Cache {
	t.Helper()
	c, err := resultcache.Open(t.TempDir())
	if err != nil {
		t.Fatalf("open cache: %v", err)
	}
	return c
}

// faultWindow injects a burst of 502s into a wrapped handler: requests
// [after, after+count) fail without reaching the handler.
type faultWindow struct {
	after int64
	count int64
	seen  atomic.Int64
	fired atomic.Int64
}

func newFaultWindow(after, count int64) *faultWindow {
	return &faultWindow{after: after, count: count}
}

func (f *faultWindow) wrap(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := f.seen.Add(1)
		if n > f.after && n <= f.after+f.count {
			f.fired.Add(1)
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusBadGateway)
			w.Write([]byte(`{"error":"injected fault"}`))
			return
		}
		h.ServeHTTP(w, r)
	})
}
