package dserve

import (
	"math"
	"testing"
)

// fill enqueues n placeholder jobs for tq.
func fill(d *drr, tq *tenantQ, n int) {
	for i := 0; i < n; i++ {
		d.push(tq, &jobState{tenant: tq.name})
	}
}

// TestDRRWeightedRatio pins the acceptance criterion deterministically:
// under saturating load at weights 3:1, served ratios stay within 10% of
// 3:1 over every window after the first scheduling round.
func TestDRRWeightedRatio(t *testing.T) {
	d := newDRR()
	heavy := d.tenant("heavy", 3, 0, 0)
	light := d.tenant("light", 1, 0, 0)
	fill(d, heavy, 600)
	fill(d, light, 600)

	var servedHeavy, servedLight float64
	for i := 0; i < 800; i++ {
		st, tq := d.pop()
		if st == nil {
			t.Fatalf("pop %d: scheduler stalled with %d jobs queued", i, d.queued)
		}
		tq.running-- // simulate instant completion
		switch tq {
		case heavy:
			servedHeavy++
		case light:
			servedLight++
		}
		// At every scheduling-round boundary (weight sum = 4 pops) the
		// cumulative ratio must hold; mid-round prefixes may transiently
		// overshoot by the in-progress quantum.
		if (i+1)%4 == 0 && servedLight > 0 {
			ratio := servedHeavy / servedLight
			if math.Abs(ratio-3) > 0.3 {
				t.Fatalf("after %d pops: served %g:%g (ratio %.2f), want 3:1 within 10%%",
					i+1, servedHeavy, servedLight, ratio)
			}
		}
	}
	if servedHeavy != 600 {
		t.Fatalf("heavy served %g of 600 before light drained its share", servedHeavy)
	}
}

// TestDRRNoStarvation: even a weight-1 tenant against a much heavier one
// is served at least once per scheduling round — the gap between
// consecutive grants is bounded by the round length (sum of weights).
func TestDRRNoStarvation(t *testing.T) {
	d := newDRR()
	heavy := d.tenant("heavy", 64, 0, 0)
	light := d.tenant("light", 1, 0, 0)
	fill(d, heavy, 1000)
	fill(d, light, 20)

	gap, maxGap := 0, 0
	for i := 0; i < 1000; i++ {
		st, tq := d.pop()
		if st == nil {
			break
		}
		tq.running--
		if tq == light {
			if gap > maxGap {
				maxGap = gap
			}
			gap = 0
		} else {
			gap++
		}
		if len(light.queue) == 0 {
			break
		}
	}
	if round := 64 + 1; maxGap > round {
		t.Fatalf("light tenant waited %d pops between grants, want <= round length %d", maxGap, round)
	}
	if light.served == 0 {
		t.Fatal("light tenant starved entirely")
	}
}

// TestDRRQuotaBound: a tenant at its running quota is skipped (and
// forfeits its deficit) while others keep being served; it becomes
// eligible again when a running job completes.
func TestDRRQuotaBound(t *testing.T) {
	d := newDRR()
	capped := d.tenant("capped", 3, 1, 0)
	free := d.tenant("free", 1, 0, 0)
	fill(d, capped, 10)
	fill(d, free, 10)

	st, tq := d.pop()
	if st == nil || tq != capped {
		t.Fatalf("first pop: got tenant %v, want capped (cursor starts there)", tq)
	}
	// capped now has running=1 == quota: the next pops must all be free's.
	for i := 0; i < 5; i++ {
		st, tq = d.pop()
		if st == nil {
			t.Fatalf("pop with free work queued returned nil")
		}
		if tq != free {
			t.Fatalf("pop %d while capped is quota-bound: got %q", i, tq.name)
		}
		tq.running--
	}
	// Completion frees the quota slot; capped is eligible again.
	capped.running--
	for i := 0; i < 10; i++ {
		st, tq = d.pop()
		if tq == capped {
			return
		}
		tq.running--
	}
	t.Fatal("capped tenant never served after its quota freed up")
}

// TestDRRQuotaDeadlock: when every queued tenant is quota-bound, pop
// returns nil rather than spinning.
func TestDRRQuotaDeadlock(t *testing.T) {
	d := newDRR()
	tq := d.tenant("only", 1, 1, 0)
	fill(d, tq, 5)
	if st, _ := d.pop(); st == nil {
		t.Fatal("first pop should serve")
	}
	if st, _ := d.pop(); st != nil {
		t.Fatal("pop served past the running quota")
	}
}

// TestDRRDepthBound: push honors the per-tenant depth independently of
// other tenants' occupancy.
func TestDRRDepthBound(t *testing.T) {
	d := newDRR()
	a := d.tenant("a", 1, 0, 2)
	b := d.tenant("b", 1, 0, 2)
	if !d.push(a, &jobState{}) || !d.push(a, &jobState{}) {
		t.Fatal("pushes within depth rejected")
	}
	if d.push(a, &jobState{}) {
		t.Fatal("push past depth accepted")
	}
	if !d.push(b, &jobState{}) {
		t.Fatal("tenant b rejected because tenant a is full")
	}
	d.pushForce(a, &jobState{})
	if len(a.queue) != 3 {
		t.Fatalf("pushForce did not bypass depth: len=%d", len(a.queue))
	}
}
