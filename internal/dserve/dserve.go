// Package dserve turns the experiment harness into a sharded simulation
// service. It has two halves:
//
//   - Server exposes an HTTP/JSON job API over the existing execution
//     machinery (experiments.ExecuteJob, the persistent result cache, the
//     telemetry registry): clients submit batches of experiments.JobSpec,
//     poll or long-poll per-job status, and fetch results. Jobs are
//     content-addressed by their cache key, so resubmitting an identical
//     spec is idempotent — it lands on the same job (in-flight dedupe) or
//     is answered straight from the cache.
//
//   - Dispatcher shards a stream of jobs across one or more Backends
//     (remote dmdcd servers via Remote, or the in-process Local so the
//     zero-config path still works), with bounded per-backend in-flight
//     windows for backpressure, per-job retry with exponential backoff,
//     hedged re-dispatch of stragglers, and cache-keyed resume so a killed
//     worker or dropped connection never loses or duplicates a result.
//
// Simulation is deterministic, which is what makes the whole design safe:
// any backend executing a spec produces the byte-identical Result, so
// retries, hedges, and cache hits are interchangeable and results can be
// deduplicated by content address alone.
//
// Wire protocol (all bodies JSON):
//
//	POST /v1/jobs            {"jobs":[JobSpec,...]} → {"jobs":[JobStatus,...]}
//	GET  /v1/jobs            → {"jobs":[JobStatus,...]} (no results)
//	GET  /v1/jobs/{id}       → JobStatus; ?wait=10s long-polls for a terminal state
//	GET  /v1/jobs/{id}/result → the core.Result JSON (404 unknown, 409 not done)
//	GET  /v1/telemetry       → telemetry registry index; ?job={id} one job's series
//	GET  /v1/healthz         → Health
package dserve

import (
	"errors"
	"fmt"

	"dmdc/internal/experiments"
)

// Status is a job's lifecycle state.
type Status string

// Job lifecycle states. Rejected appears only in submit responses: the
// server's queue was full and the job was not admitted (backpressure) —
// the client should back off and resubmit.
const (
	StatusQueued   Status = "queued"
	StatusRunning  Status = "running"
	StatusDone     Status = "done"
	StatusFailed   Status = "failed"
	StatusRejected Status = "rejected"
)

// Terminal reports whether a job in this state will never change again.
func (s Status) Terminal() bool { return s == StatusDone || s == StatusFailed }

// SubmitRequest is the body of POST /v1/jobs.
type SubmitRequest struct {
	Jobs []experiments.JobSpec `json:"jobs"`
}

// JobStatus is the wire form of one job's state.
type JobStatus struct {
	// ID is the job's content address (its result-cache key): identical
	// specs share an ID, which is what makes submission idempotent.
	ID     string `json:"id"`
	Status Status `json:"status"`
	// Cached marks a job answered from the persistent result cache
	// without simulating.
	Cached bool `json:"cached,omitempty"`
	// Error holds the failure for StatusFailed (and the reason for
	// StatusRejected).
	Error string `json:"error,omitempty"`
	// Retryable hints whether a failure was environmental (shutdown,
	// cancellation — another backend may succeed) rather than
	// deterministic (a bad spec or a soundness divergence, which every
	// backend would reproduce).
	Retryable bool `json:"retryable,omitempty"`
}

// ListResponse is the body of GET /v1/jobs (and the submit response).
type ListResponse struct {
	Jobs []JobStatus `json:"jobs"`
}

// Health is the body of GET /v1/healthz.
type Health struct {
	OK      bool `json:"ok"`
	Workers int  `json:"workers"`
	// QueueCap is the admission queue's capacity; Queued its depth.
	QueueCap int `json:"queue_cap"`
	Queued   int `json:"queued"`
	Running  int `json:"running"`
	Done     int `json:"done"`
	Failed   int `json:"failed"`
	// Executed counts simulations actually run (cache hits excluded).
	Executed  uint64 `json:"executed"`
	CacheHits uint64 `json:"cache_hits"`
	Rejected  uint64 `json:"rejected"`
}

// BackendError labels a failure with the backend it came from and whether
// the job is worth retrying elsewhere.
type BackendError struct {
	Backend   string
	Retryable bool
	Err       error
}

// Error renders the labeled failure.
func (e *BackendError) Error() string {
	kind := "permanent"
	if e.Retryable {
		kind = "retryable"
	}
	return fmt.Sprintf("dserve: backend %s: %s: %v", e.Backend, kind, e.Err)
}

// Unwrap exposes the underlying cause.
func (e *BackendError) Unwrap() error { return e.Err }

// Retryable reports whether err is worth retrying on another backend (or
// later on the same one). Unlabeled errors are treated as permanent:
// deterministic simulation means an execution failure reproduces anywhere.
func Retryable(err error) bool {
	var be *BackendError
	return errors.As(err, &be) && be.Retryable
}
