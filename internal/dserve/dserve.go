// Package dserve turns the experiment harness into a sharded simulation
// service. It has two halves:
//
//   - Server exposes an HTTP/JSON job API over the existing execution
//     machinery (experiments.ExecuteJob, the persistent result cache, the
//     telemetry registry): clients submit batches of experiments.JobSpec,
//     poll or long-poll per-job status, and fetch results. Jobs are
//     content-addressed by their cache key, so resubmitting an identical
//     spec is idempotent — it lands on the same job (in-flight dedupe) or
//     is answered straight from the cache. Admission is multi-tenant: the
//     X-DMDC-Tenant header (default "default") selects a per-tenant
//     bounded queue, workers are shared by weighted deficit-round-robin
//     across tenants, and per-tenant quotas bound concurrently running
//     jobs. With a jobstore attached, every admission and lifecycle
//     transition is journaled, so a crashed or restarted server resumes
//     or re-queues every incomplete job under the same content-addressed
//     ID — a client long-polling /v1/jobs/{id}?wait reconnects and gets
//     the identical answer.
//
//   - Dispatcher shards a stream of jobs across one or more Backends
//     (remote dmdcd servers via Remote, or the in-process Local so the
//     zero-config path still works), with bounded per-backend in-flight
//     windows for backpressure, per-job retry with exponential backoff
//     (honoring Retry-After hints from overloaded servers), hedged
//     re-dispatch of stragglers, and cache-keyed resume so a killed
//     worker or dropped connection never loses or duplicates a result.
//
// Simulation is deterministic, which is what makes the whole design safe:
// any backend executing a spec produces the byte-identical Result, so
// retries, hedges, cache hits, and crash-restart re-executions are
// interchangeable and results can be deduplicated by content address
// alone.
//
// Wire protocol (all bodies JSON):
//
//	POST /v1/jobs            {"jobs":[JobSpec,...]} → {"jobs":[JobStatus,...]}
//	                         X-DMDC-Tenant names the submitting tenant;
//	                         a fully rejected batch is a 503 with Retry-After
//	GET  /v1/jobs            → {"jobs":[JobStatus,...]} (no results)
//	GET  /v1/jobs/{id}       → JobStatus; ?wait=10s long-polls for a terminal state
//	GET  /v1/jobs/{id}/result → the core.Result JSON (404 unknown, 409 not done)
//	GET  /v1/cache/{key}     → raw result-cache entry bytes; the X-DMDC-Cache-Sha256
//	                         header carries the body's hex SHA-256 and
//	                         X-DMDC-Cache-Format the cache format version,
//	                         so the fetching peer verifies before trusting
//	PUT  /v1/cache/{key}     ← raw entry bytes + the same headers; the server
//	                         verifies hash, format, and key before storing
//	GET  /v1/version         → VersionInfo (wire protocol + cache/journal
//	                         format versions); mixed-version fleets fail
//	                         closed on it instead of mysteriously
//	GET  /v1/telemetry       → telemetry registry index (+ service counters);
//	                         ?job={id} one job's series
//	GET  /v1/healthz         → Health (per-tenant depth/served included)
//
// Every non-2xx response carries one structured ErrorEnvelope
// ({code, message, retryable, retry_after}), so clients branch on a stable
// machine-readable code instead of string-matching messages.
package dserve

import (
	"errors"
	"fmt"
	"time"

	"dmdc/internal/experiments"
	"dmdc/internal/resultcache"
)

// DefaultTenant is the tenant jobs land on when the submit carries no
// X-DMDC-Tenant header.
const DefaultTenant = "default"

// TenantHeader is the HTTP header naming the submitting tenant.
const TenantHeader = "X-DMDC-Tenant"

// ProtocolVersion identifies the /v1 wire protocol. Bump on any
// incompatible change to routes, bodies, or the error envelope; peers
// compare it via GET /v1/version and refuse to interoperate on mismatch.
const ProtocolVersion = 1

// Cache wire headers: the hex SHA-256 of the entry body and the
// resultcache format version it was encoded under. Both sides verify —
// a transfer that loses bytes or crosses a format boundary fails closed.
const (
	CacheSumHeader    = "X-DMDC-Cache-Sha256"
	CacheFormatHeader = "X-DMDC-Cache-Format"
)

// Error codes carried by ErrorEnvelope.Code. Stable: clients branch on
// them, so renaming one is a protocol change.
const (
	CodeBadRequest   = "bad_request"   // malformed body, header, or parameter
	CodeNotFound     = "not_found"     // unknown job, cache key, or route
	CodeConflict     = "conflict"      // result requested before the job finished
	CodeBackpressure = "backpressure"  // queue full; retry after the hint
	CodeServerClosed = "server_closed" // draining or shut down
	CodeJobFailed    = "job_failed"    // the simulation itself failed
	CodeBadEntry     = "bad_entry"     // cache body failed hash/format verification
	CodeUnavailable  = "unavailable"   // feature not enabled on this instance
	CodeInternal     = "internal"      // unexpected server-side failure
)

// ErrorEnvelope is the one structured error body every /v1 endpoint
// returns for non-2xx responses.
type ErrorEnvelope struct {
	// Code is a stable machine-readable discriminator (Code* constants).
	Code string `json:"code"`
	// Message is the human-readable failure description.
	Message string `json:"message"`
	// Retryable hints whether the same request may succeed later or
	// elsewhere (backpressure, shutdown) rather than deterministically
	// failing again (bad spec, failed simulation).
	Retryable bool `json:"retryable"`
	// RetryAfter, when positive, is the server's backoff hint in seconds
	// (mirrors the Retry-After header on 503/429).
	RetryAfter int `json:"retry_after,omitempty"`
}

// VersionInfo is the body of GET /v1/version: everything a peer needs to
// decide whether interoperating is safe. Wire protocol, cache entry
// format, and journal format version all gate different couplings (API
// calls, peer cache fetch, shared store handoff).
type VersionInfo struct {
	Protocol      int `json:"protocol"`
	CacheFormat   int `json:"cache_format"`
	JournalFormat int `json:"journal_format"`
	// Instance is the server's self-chosen identity (lease owner name).
	Instance string `json:"instance,omitempty"`
}

// Status is a job's lifecycle state.
type Status string

// Job lifecycle states. Rejected appears in submit responses (the
// tenant's queue was full and the job was not admitted — back off and
// resubmit) and as the terminal state of admitted-but-unstarted jobs
// evicted by a server shutdown; either way it is retryable.
const (
	StatusQueued   Status = "queued"
	StatusRunning  Status = "running"
	StatusDone     Status = "done"
	StatusFailed   Status = "failed"
	StatusRejected Status = "rejected"
)

// Terminal reports whether a job in this state will never change again.
// Rejected is terminal: the job left the server's queue and will only run
// if a client resubmits it.
func (s Status) Terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusRejected
}

// TenantConfig shapes per-tenant admission control on a Server.
type TenantConfig struct {
	// Weights maps tenant name → DRR weight (jobs served per scheduling
	// round under contention). Tenants not listed get DefaultWeight.
	Weights map[string]int
	// DefaultWeight is the weight for unlisted tenants; 0 means 1.
	DefaultWeight int
	// Quota bounds each tenant's concurrently running jobs; 0 disables.
	Quota int
	// QueueDepth bounds each tenant's admitted-but-unstarted queue;
	// 0 means the server's QueueDepth.
	QueueDepth int
}

// weightFor resolves a tenant's DRR weight.
func (tc TenantConfig) weightFor(name string) int {
	if w, ok := tc.Weights[name]; ok && w > 0 {
		return w
	}
	if tc.DefaultWeight > 0 {
		return tc.DefaultWeight
	}
	return 1
}

// SubmitRequest is the body of POST /v1/jobs.
type SubmitRequest struct {
	Jobs []experiments.JobSpec `json:"jobs"`
}

// JobStatus is the wire form of one job's state.
type JobStatus struct {
	// ID is the job's content address (its result-cache key): identical
	// specs share an ID, which is what makes submission idempotent.
	ID     string `json:"id"`
	Status Status `json:"status"`
	// Tenant is the tenant the job was admitted under.
	Tenant string `json:"tenant,omitempty"`
	// Cached marks a job answered from the persistent result cache
	// without simulating.
	Cached bool `json:"cached,omitempty"`
	// Error holds the failure for StatusFailed (and the reason for
	// StatusRejected).
	Error string `json:"error,omitempty"`
	// Retryable hints whether a failure was environmental (shutdown,
	// cancellation, backpressure — another backend or a later resubmit
	// may succeed) rather than deterministic (a bad spec or a soundness
	// divergence, which every backend would reproduce).
	Retryable bool `json:"retryable,omitempty"`
}

// ListResponse is the body of GET /v1/jobs (and the submit response).
type ListResponse struct {
	Jobs []JobStatus `json:"jobs"`
}

// TenantHealth is one tenant's slice of the health snapshot.
type TenantHealth struct {
	Weight   int    `json:"weight"`
	Quota    int    `json:"quota,omitempty"`
	QueueCap int    `json:"queue_cap"`
	Queued   int    `json:"queued"`
	Running  int    `json:"running"`
	Admitted uint64 `json:"admitted"`
	// Served counts jobs handed to workers (the DRR fairness metric).
	Served   uint64 `json:"served"`
	Rejected uint64 `json:"rejected"`
}

// Health is the body of GET /v1/healthz.
type Health struct {
	OK      bool `json:"ok"`
	Workers int  `json:"workers"`
	// QueueCap is the per-tenant admission queue capacity; Queued the
	// total depth across tenants.
	QueueCap int `json:"queue_cap"`
	Queued   int `json:"queued"`
	Running  int `json:"running"`
	Done     int `json:"done"`
	Failed   int `json:"failed"`
	// Executed counts simulations actually run (cache hits excluded).
	Executed  uint64 `json:"executed"`
	CacheHits uint64 `json:"cache_hits"`
	Rejected  uint64 `json:"rejected"`
	// Tenants breaks admission down per tenant.
	Tenants map[string]TenantHealth `json:"tenants,omitempty"`
	// ResumedDone / ResumedRequeued count jobs recovered from the journal
	// at startup: already complete (result served from cache) vs
	// incomplete (re-queued for execution).
	ResumedDone     uint64 `json:"resumed_done,omitempty"`
	ResumedRequeued uint64 `json:"resumed_requeued,omitempty"`
	// JournalErrors counts failed journal appends (durability degraded
	// but service continuing).
	JournalErrors uint64 `json:"journal_errors,omitempty"`
	// Instance is the server's lease-owner identity.
	Instance string `json:"instance,omitempty"`
	// Adopted counts jobs taken over from another instance's lease
	// (released on drain, or expired after a crash). Deferred counts jobs
	// whose foreign lease was still live at resume — the reclaimer adopts
	// them when the lease expires; a positive value here with zero Adopted
	// means the server is waiting out a peer's lease.
	Adopted  uint64 `json:"adopted,omitempty"`
	Deferred uint64 `json:"deferred,omitempty"`
	// PeerCache breaks down the result store's tiers when the server runs
	// a Tiered store (local/peer/negative hits and peer errors).
	PeerCache *resultcache.Stats `json:"peer_cache,omitempty"`
}

// BackendError labels a failure with the backend it came from and whether
// the job is worth retrying elsewhere.
type BackendError struct {
	Backend   string
	Retryable bool
	// RetryAfter, when positive, is the server's own backoff hint (from a
	// Retry-After header on a 503/429): the earliest moment a retry is
	// likely to be admitted. The Dispatcher honors it in place of its
	// exponential schedule.
	RetryAfter time.Duration
	Err        error
}

// Error renders the labeled failure.
func (e *BackendError) Error() string {
	kind := "permanent"
	if e.Retryable {
		kind = "retryable"
	}
	return fmt.Sprintf("dserve: backend %s: %s: %v", e.Backend, kind, e.Err)
}

// Unwrap exposes the underlying cause.
func (e *BackendError) Unwrap() error { return e.Err }

// Retryable reports whether err is worth retrying on another backend (or
// later on the same one). Unlabeled errors are treated as permanent:
// deterministic simulation means an execution failure reproduces anywhere.
func Retryable(err error) bool {
	var be *BackendError
	return errors.As(err, &be) && be.Retryable
}

// RetryAfterHint extracts a server-provided backoff hint from err, if the
// failing backend sent one.
func RetryAfterHint(err error) (time.Duration, bool) {
	var be *BackendError
	if errors.As(err, &be) && be.RetryAfter > 0 {
		return be.RetryAfter, true
	}
	return 0, false
}
