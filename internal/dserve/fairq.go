package dserve

// tenantQ is one tenant's admission state: a bounded FIFO of admitted
// jobs plus the deficit-round-robin accounting that shares workers
// fairly. Fields are guarded by Server.mu.
type tenantQ struct {
	name   string
	weight int // DRR quantum: jobs served per scheduling round
	quota  int // max concurrently running jobs; 0 = unlimited
	depth  int // queue capacity

	queue   []*jobState
	deficit int
	running int

	admitted uint64
	served   uint64
	rejected uint64
}

// drr schedules admitted jobs across tenants by deficit round robin:
// each visit grants a tenant `weight` units of deficit, one unit buys one
// job, and the cursor only advances when the tenant's budget or queue is
// exhausted — so under saturating load tenants are served in proportion
// to their weights, and any tenant with queued work is served at least
// once per round (no starvation). Jobs are unit-cost (one simulation),
// which makes the quantum exactly the per-round job count.
//
// drr is not self-locking; Server.mu guards every method.
type drr struct {
	tenants map[string]*tenantQ
	ring    []*tenantQ
	cursor  int
	// visiting marks that ring[cursor] has already received this visit's
	// quantum, so consecutive pops within one visit do not re-grant it.
	visiting bool
	queued   int
}

func newDRR() *drr {
	return &drr{tenants: make(map[string]*tenantQ)}
}

// tenant returns the named tenant's queue, creating it on first sight
// with the given parameters. Tenants are never removed: the set is
// bounded by the distinct tenant names a deployment actually uses.
func (d *drr) tenant(name string, weight, quota, depth int) *tenantQ {
	if tq, ok := d.tenants[name]; ok {
		return tq
	}
	if weight < 1 {
		weight = 1
	}
	tq := &tenantQ{name: name, weight: weight, quota: quota, depth: depth}
	d.tenants[name] = tq
	d.ring = append(d.ring, tq)
	return tq
}

// push appends a job to its tenant's queue, reporting false when the
// tenant's depth is exhausted (admission control rejects, not blocks).
func (d *drr) push(tq *tenantQ, st *jobState) bool {
	if tq.depth > 0 && len(tq.queue) >= tq.depth {
		return false
	}
	tq.queue = append(tq.queue, st)
	d.queued++
	return true
}

// pushForce enqueues past the depth bound; the restart-resume path must
// never drop a journaled job to admission control.
func (d *drr) pushForce(tq *tenantQ, st *jobState) {
	tq.queue = append(tq.queue, st)
	d.queued++
}

// pop dequeues the next job under DRR, or returns nil when no tenant is
// eligible (all queues empty, or every queued tenant is at its running
// quota). The caller owns the returned job's `running` decrement.
func (d *drr) pop() (*jobState, *tenantQ) {
	if d.queued == 0 || len(d.ring) == 0 {
		return nil, nil
	}
	n := len(d.ring)
	advance := func() {
		d.cursor = (d.cursor + 1) % n
		d.visiting = false
	}
	// Two full sweeps bound the scan: the first may only be refilling
	// deficits, the second then serves — unless every queued tenant is
	// quota-bound, in which case nothing is eligible yet.
	for i := 0; i < 2*n; i++ {
		tq := d.ring[d.cursor]
		if !d.visiting {
			tq.deficit += tq.weight
			d.visiting = true
		}
		if len(tq.queue) == 0 || (tq.quota > 0 && tq.running >= tq.quota) {
			// An empty or quota-bound tenant forfeits its deficit: it is
			// not competing this round, and banked deficit would otherwise
			// buy it an unfair burst later.
			tq.deficit = 0
			advance()
			continue
		}
		if tq.deficit < 1 {
			advance()
			continue
		}
		tq.deficit--
		st := tq.queue[0]
		tq.queue[0] = nil // release the reference for GC
		tq.queue = tq.queue[1:]
		d.queued--
		tq.running++
		tq.served++
		return st, tq
	}
	return nil, nil
}

// drain empties every queue, returning the evicted jobs (used by Close to
// give each admitted-unstarted job a terminal status instead of silently
// dropping it).
func (d *drr) drain() []*jobState {
	var out []*jobState
	for _, tq := range d.ring {
		for _, st := range tq.queue {
			out = append(out, st)
		}
		tq.queue = nil
	}
	d.queued = 0
	return out
}
