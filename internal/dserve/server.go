package dserve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dmdc/internal/core"
	"dmdc/internal/experiments"
	"dmdc/internal/resultcache"
	"dmdc/internal/telemetry"
)

// ServerConfig sizes a simulation server.
type ServerConfig struct {
	// Workers bounds concurrent simulations; 0 means GOMAXPROCS.
	Workers int
	// QueueDepth bounds admitted-but-unstarted jobs; a full queue rejects
	// new submissions (backpressure). 0 means 4×Workers (min 16).
	QueueDepth int
	// Cache, when non-nil, answers non-soundness jobs from the persistent
	// result cache and writes every computed result back, so any process
	// sharing the directory resumes instead of recomputing.
	Cache *resultcache.Cache
	// Telemetry, when non-nil, attaches a per-job sampler to every
	// simulated job and serves the registry at /v1/telemetry, keyed by job
	// ID. Zero fields take the telemetry defaults.
	Telemetry *telemetry.Config
}

// jobState is one job's lifecycle; guarded by Server.mu except for the
// immutable id/spec and the done channel (closed exactly once by the
// executing worker, after the terminal state is published).
type jobState struct {
	id   string
	spec experiments.JobSpec

	status    Status
	cached    bool
	errMsg    string
	retryable bool
	result    *core.Result
	done      chan struct{}
}

// Server executes simulation jobs behind the HTTP/JSON API described in
// the package comment. Create with NewServer, serve via ServeHTTP (it is
// an http.Handler), stop with Close.
type Server struct {
	workers  int
	queueCap int
	cache    *resultcache.Cache
	telCfg   *telemetry.Config
	reg      *telemetry.Registry

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	mux    *http.ServeMux

	mu     sync.Mutex
	closed bool
	jobs   map[string]*jobState
	queue  chan *jobState

	executed  atomic.Uint64
	cacheHits atomic.Uint64
	rejected  atomic.Uint64
}

// NewServer builds a server and starts its worker pool.
func NewServer(cfg ServerConfig) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4 * cfg.Workers
		if cfg.QueueDepth < 16 {
			cfg.QueueDepth = 16
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		workers:  cfg.Workers,
		queueCap: cfg.QueueDepth,
		cache:    cfg.Cache,
		telCfg:   cfg.Telemetry,
		ctx:      ctx,
		cancel:   cancel,
		jobs:     make(map[string]*jobState),
		queue:    make(chan *jobState, cfg.QueueDepth),
	}
	if s.telCfg != nil {
		s.reg = telemetry.NewRegistry()
	}
	s.routes()
	for i := 0; i < s.workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Close stops accepting jobs, cancels in-flight simulations (they fail
// with a retryable shutdown error), and waits for the workers to exit.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.cancel()
	close(s.queue)
	s.mu.Unlock()
	s.wg.Wait()
}

// worker drains the queue, executing one job at a time.
func (s *Server) worker() {
	defer s.wg.Done()
	for st := range s.queue {
		s.execute(st)
	}
}

// execute runs one admitted job to its terminal state.
func (s *Server) execute(st *jobState) {
	if err := s.ctx.Err(); err != nil {
		s.finish(st, nil, false, fmt.Sprintf("server shutting down: %v", err), true)
		return
	}
	s.mu.Lock()
	st.status = StatusRunning
	s.mu.Unlock()

	var sampler *telemetry.Sampler
	if s.telCfg != nil {
		// Registered before the run starts so /v1/telemetry?job=ID watches
		// the series fill in while the job executes.
		sampler = telemetry.New(*s.telCfg)
		s.reg.Register(st.id, sampler)
	}
	res, err := experiments.ExecuteJobWithSampler(s.ctx, st.spec, sampler)
	if err != nil {
		// A cancellation is environmental — another backend can still run
		// the job. Anything else is deterministic: the same spec would
		// fail the same way anywhere.
		retryable := s.ctx.Err() != nil
		s.finish(st, nil, false, err.Error(), retryable)
		return
	}
	s.executed.Add(1)
	if s.cache != nil && !st.spec.Soundness {
		// Best-effort: a failed write only costs a recompute next time.
		s.cache.Put(st.id, res)
	}
	s.finish(st, res, false, "", false)
}

// finish publishes a job's terminal state and wakes every waiter.
func (s *Server) finish(st *jobState, res *core.Result, cached bool, errMsg string, retryable bool) {
	s.mu.Lock()
	st.result = res
	st.cached = cached
	st.errMsg = errMsg
	st.retryable = retryable
	if errMsg == "" {
		st.status = StatusDone
	} else {
		st.status = StatusFailed
	}
	s.mu.Unlock()
	close(st.done)
}

// admit registers one submitted spec and returns its wire status:
// an existing job (idempotent resubmit), a cache answer, a queued
// admission, or a backpressure rejection.
func (s *Server) admit(spec experiments.JobSpec) JobStatus {
	if err := spec.Validate(); err != nil {
		// Invalid specs are rejected before they get an ID of their own:
		// the error is deterministic and the client must fix the spec.
		return JobStatus{ID: spec.CacheKey(), Status: StatusFailed, Error: err.Error()}
	}
	id := spec.CacheKey()
	s.mu.Lock()
	defer s.mu.Unlock()
	if st, ok := s.jobs[id]; ok {
		return s.statusLocked(st)
	}
	if s.closed {
		s.rejected.Add(1)
		return JobStatus{ID: id, Status: StatusRejected, Error: "server closed"}
	}
	st := &jobState{id: id, spec: spec, status: StatusQueued, done: make(chan struct{})}
	if s.cache != nil && !spec.Soundness {
		if hit, ok := s.cache.Get(id); ok {
			s.cacheHits.Add(1)
			st.status = StatusDone
			st.result = hit
			st.cached = true
			close(st.done)
			s.jobs[id] = st
			return s.statusLocked(st)
		}
	}
	select {
	case s.queue <- st:
		s.jobs[id] = st
		return s.statusLocked(st)
	default:
		s.rejected.Add(1)
		return JobStatus{ID: id, Status: StatusRejected, Error: "queue full"}
	}
}

// statusLocked snapshots a job's wire status; callers hold mu.
func (s *Server) statusLocked(st *jobState) JobStatus {
	return JobStatus{
		ID:        st.id,
		Status:    st.status,
		Cached:    st.cached,
		Error:     st.errMsg,
		Retryable: st.retryable,
	}
}

// lookup returns a job by id.
func (s *Server) lookup(id string) (*jobState, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.jobs[id]
	return st, ok
}

// routes wires the handler table.
func (s *Server) routes() {
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealth)
	s.mux.HandleFunc("GET /v1/telemetry", s.handleTelemetry)
}

// ServeHTTP dispatches to the /v1 API.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// maxSubmitBytes bounds a submit body; a full-matrix batch of specs is a
// few hundred KB, so 32 MiB is generous without being unbounded.
const maxSubmitBytes = 32 << 20

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSubmitBytes))
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decode submit: %w", err))
		return
	}
	if len(req.Jobs) == 0 {
		httpError(w, http.StatusBadRequest, fmt.Errorf("submit has no jobs"))
		return
	}
	resp := ListResponse{Jobs: make([]JobStatus, 0, len(req.Jobs))}
	rejected := 0
	for _, spec := range req.Jobs {
		js := s.admit(spec)
		if js.Status == StatusRejected {
			rejected++
		}
		resp.Jobs = append(resp.Jobs, js)
	}
	code := http.StatusOK
	if rejected == len(req.Jobs) {
		// Nothing was admitted: surface the backpressure at the HTTP layer
		// too, so plain clients back off without parsing per-job states.
		code = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, code, resp)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	resp := ListResponse{Jobs: make([]JobStatus, 0, len(s.jobs))}
	for _, st := range s.jobs {
		resp.Jobs = append(resp.Jobs, s.statusLocked(st))
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

// maxWait caps ?wait= long polls so a dead client cannot pin a handler.
const maxWait = time.Minute

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	st, ok := s.lookup(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown job"))
		return
	}
	if waitStr := r.URL.Query().Get("wait"); waitStr != "" {
		wait, err := time.ParseDuration(waitStr)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad wait: %w", err))
			return
		}
		if wait > maxWait {
			wait = maxWait
		}
		// Long poll: return early on a terminal state, else at the
		// deadline with whatever state the job is in.
		t := time.NewTimer(wait)
		defer t.Stop()
		select {
		case <-st.done:
		case <-t.C:
		case <-r.Context().Done():
		}
	}
	s.mu.Lock()
	js := s.statusLocked(st)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, js)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	st, ok := s.lookup(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown job"))
		return
	}
	s.mu.Lock()
	status, res, errMsg := st.status, st.result, st.errMsg
	s.mu.Unlock()
	switch status {
	case StatusDone:
		writeJSON(w, http.StatusOK, res)
	case StatusFailed:
		httpError(w, http.StatusInternalServerError, fmt.Errorf("job failed: %s", errMsg))
	default:
		httpError(w, http.StatusConflict, fmt.Errorf("job %s", status))
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	h := Health{
		OK:       !s.closed,
		Workers:  s.workers,
		QueueCap: s.queueCap,
		Queued:   len(s.queue),
	}
	for _, st := range s.jobs {
		switch st.status {
		case StatusRunning:
			h.Running++
		case StatusDone:
			h.Done++
		case StatusFailed:
			h.Failed++
		}
	}
	s.mu.Unlock()
	h.Executed = s.executed.Load()
	h.CacheHits = s.cacheHits.Load()
	h.Rejected = s.rejected.Load()
	writeJSON(w, http.StatusOK, h)
}

func (s *Server) handleTelemetry(w http.ResponseWriter, r *http.Request) {
	if s.reg == nil {
		httpError(w, http.StatusNotFound, fmt.Errorf("telemetry disabled (start the server with a telemetry config)"))
		return
	}
	s.reg.ServeHTTP(w, r)
}

// Executed counts simulations actually run (cache hits excluded).
func (s *Server) Executed() uint64 { return s.executed.Load() }

// writeJSON renders v with the given status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// httpError renders {"error": ...} with the given status code.
func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
