package dserve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"dmdc/internal/core"
	"dmdc/internal/experiments"
	"dmdc/internal/jobstore"
	"dmdc/internal/resultcache"
	"dmdc/internal/telemetry"
)

// ServerConfig sizes a simulation server.
type ServerConfig struct {
	// Workers bounds concurrent simulations; 0 means GOMAXPROCS.
	Workers int
	// QueueDepth bounds each tenant's admitted-but-unstarted jobs; a full
	// tenant queue rejects that tenant's submissions (backpressure)
	// without affecting other tenants. 0 means 4×Workers (min 16).
	QueueDepth int
	// Tenants shapes per-tenant weights, quotas, and queue depths.
	Tenants TenantConfig
	// Cache, when non-nil, answers non-soundness jobs from the persistent
	// result store and writes every computed result back. Any Store works:
	// a disk *resultcache.Cache, a fleet *resultcache.Tiered, or a test
	// fake. The GET/PUT /v1/cache endpoints additionally serve raw entries
	// to peers when the store (or its local tier) can produce them.
	Cache resultcache.Store
	// Store, when non-nil, journals every admission and lifecycle
	// transition. NewServer replays it: incomplete jobs (admitted or
	// running at the time of the crash) are re-queued under their
	// original tenant and content-addressed ID, completed jobs are
	// re-published from the cache or journal, so long-polling clients
	// reconnect and get the identical answer. The server appends and
	// compacts; the caller owns Open/Close of the store.
	Store *jobstore.Store
	// Instance names this server as a lease owner in the journal. Two
	// instances that ever share (hand off) a store directory must differ.
	// Empty means "pid-<os pid>".
	Instance string
	// LeaseTTL is how long this instance's claim on an incomplete job
	// stays live without renewal. A successor opening the same store
	// defers jobs under a foreign live lease until it expires (the leaked
	// lease of a crashed peer), and adopts released or expired ones
	// immediately. 0 means 30s.
	LeaseTTL time.Duration
	// Telemetry, when non-nil, attaches a per-job sampler to every
	// simulated job and serves the registry at /v1/telemetry, keyed by job
	// ID. Zero fields take the telemetry defaults.
	Telemetry *telemetry.Config
}

// jobState is one job's lifecycle; guarded by Server.mu except for the
// immutable id/spec/tenant and the done channel (closed exactly once,
// after the terminal state is published).
type jobState struct {
	id     string
	spec   experiments.JobSpec
	tenant string
	tq     *tenantQ

	status    Status
	cached    bool
	errMsg    string
	retryable bool
	result    *core.Result
	done      chan struct{}

	// foreignLeaseUntil is the Unix-ms expiry of another instance's live
	// lease observed at resume; the reclaimer adopts the job after it.
	// ownLeaseUntil is the expiry of this instance's last journaled lease
	// (atomic: the lease loop reads it without the server lock).
	foreignLeaseUntil int64
	ownLeaseUntil     atomic.Int64
}

// Server executes simulation jobs behind the HTTP/JSON API described in
// the package comment. Create with NewServer, serve via ServeHTTP (it is
// an http.Handler), stop with Close.
type Server struct {
	workers  int
	queueCap int
	tcfg     TenantConfig
	cache    resultcache.Store
	store    *jobstore.Store
	instance string
	leaseTTL time.Duration
	telCfg   *telemetry.Config
	reg      *telemetry.Registry

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	mux    *http.ServeMux

	mu       sync.Mutex
	cond     *sync.Cond
	closed   bool
	jobs     map[string]*jobState
	sched    *drr
	deferred []*jobState // foreign live leases awaiting expiry

	executed        atomic.Uint64
	cacheHits       atomic.Uint64
	rejected        atomic.Uint64
	journalErrs     atomic.Uint64
	adopted         atomic.Uint64
	deferredTotal   atomic.Uint64
	resumedDone     uint64 // written once in NewServer, before workers start
	resumedRequeued uint64
}

// NewServer builds a server, replays cfg.Store if present, and starts the
// worker pool. The only error source is journal replay/append during
// resume — a fresh or store-less server cannot fail.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4 * cfg.Workers
		if cfg.QueueDepth < 16 {
			cfg.QueueDepth = 16
		}
	}
	if cfg.Tenants.QueueDepth <= 0 {
		cfg.Tenants.QueueDepth = cfg.QueueDepth
	}
	if cfg.Instance == "" {
		cfg.Instance = fmt.Sprintf("pid-%d", os.Getpid())
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 30 * time.Second
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		workers:  cfg.Workers,
		queueCap: cfg.Tenants.QueueDepth,
		tcfg:     cfg.Tenants,
		cache:    cfg.Cache,
		store:    cfg.Store,
		instance: cfg.Instance,
		leaseTTL: cfg.LeaseTTL,
		telCfg:   cfg.Telemetry,
		ctx:      ctx,
		cancel:   cancel,
		jobs:     make(map[string]*jobState),
		sched:    newDRR(),
	}
	s.cond = sync.NewCond(&s.mu)
	if s.telCfg != nil {
		s.reg = telemetry.NewRegistry()
		s.reg.SetCounterSource(s.counterSnapshot)
	}
	s.routes()
	if s.store != nil {
		if err := s.resume(); err != nil {
			cancel()
			return nil, err
		}
	}
	for i := 0; i < s.workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	if s.store != nil {
		s.wg.Add(1)
		go s.leaseLoop()
	}
	return s, nil
}

// resume rebuilds the job table from the journal: terminal jobs are
// re-published (done jobs need their result back — from the cache — or
// they are re-queued, since simulation is deterministic), incomplete jobs
// are re-queued under their original tenant in admission order.
//
// Handoff: an incomplete job carrying another instance's lease is only
// adopted immediately if the lease has expired (the previous owner
// crashed and its claim lapsed) — a live foreign lease means the owner
// may still be running the job, so it is deferred and the lease loop
// adopts it at expiry. Jobs the previous owner released on drain carry no
// lease and are adopted at once. Either way an adopted job is re-leased
// under this instance before it is queued: zero lost, zero duplicated.
func (s *Server) resume() error {
	nowMS := time.Now().UnixMilli()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, jr := range s.store.Jobs() {
		var spec experiments.JobSpec
		if err := json.Unmarshal(jr.Spec, &spec); err != nil {
			return fmt.Errorf("dserve: resume job %s: %w", jr.ID, err)
		}
		st := &jobState{
			id: jr.ID, spec: spec, tenant: jr.Tenant,
			status: StatusQueued, done: make(chan struct{}),
		}
		st.tq = s.tenantLocked(jr.Tenant)
		s.jobs[jr.ID] = st

		// A result in the cache settles the job no matter what the journal
		// says: cache.Put happens before the done record is appended, so a
		// crash between the two leaves a "running" job whose work is done.
		if s.cache != nil && !spec.Soundness {
			if hit, ok := s.cache.Get(jr.ID); ok {
				st.status = StatusDone
				st.result = hit
				st.cached = true
				close(st.done)
				s.resumedDone++
				continue
			}
		}
		if jr.State == jobstore.StateFailed && !jr.Retryable {
			// A deterministic failure reproduces identically; keep it.
			st.status = StatusFailed
			st.errMsg = jr.Error
			close(st.done)
			s.resumedDone++
			continue
		}
		if jr.Owner != "" && jr.Owner != s.instance && jr.LeaseUntil > nowMS {
			// Foreign live lease: the owner may still be computing this
			// job. Defer adoption until the lease lapses.
			st.foreignLeaseUntil = jr.LeaseUntil
			s.deferred = append(s.deferred, st)
			s.deferredTotal.Add(1)
			s.resumedRequeued++
			continue
		}
		if jr.Owner != "" && jr.Owner != s.instance {
			s.adopted.Add(1) // expired foreign lease: adopt now
		}
		// Admitted, running, retryably-failed, or done-but-uncached:
		// incomplete as far as a client is concerned. Re-queue (past the
		// depth bound — journaled admissions are never dropped) under our
		// own lease.
		s.leaseJob(st)
		s.sched.pushForce(st.tq, st)
		st.tq.admitted++
		s.resumedRequeued++
	}
	return nil
}

// leaseJob journals this instance's claim on an incomplete job. Safe to
// call with or without s.mu held (the journal has its own lock).
func (s *Server) leaseJob(st *jobState) {
	if s.store == nil {
		return
	}
	until := time.Now().Add(s.leaseTTL).UnixMilli()
	if err := s.store.Append(jobstore.Record{
		State: jobstore.StateLeased, ID: st.id, Owner: s.instance, LeaseUntil: until,
	}); err != nil {
		s.journalErrs.Add(1)
		return
	}
	st.ownLeaseUntil.Store(until)
}

// leaseLoop renews this instance's leases on incomplete jobs and adopts
// deferred jobs whose foreign lease has lapsed. It wakes at a fraction of
// the TTL so a renewal always lands before the previous lease expires.
func (s *Server) leaseLoop() {
	defer s.wg.Done()
	tick := s.leaseTTL / 3
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-s.ctx.Done():
			return
		case <-t.C:
			s.renewAndReclaim()
		}
	}
}

// renewAndReclaim is one lease-loop pass: re-lease incomplete jobs whose
// claim is at least half spent, and adopt deferred jobs whose foreign
// lease has lapsed.
func (s *Server) renewAndReclaim() {
	nowMS := time.Now().UnixMilli()
	renewAt := nowMS + s.leaseTTL.Milliseconds()/2

	s.mu.Lock()
	var renew []*jobState
	for _, st := range s.jobs {
		if (st.status == StatusQueued || st.status == StatusRunning) &&
			st.foreignLeaseUntil == 0 && st.ownLeaseUntil.Load() < renewAt {
			renew = append(renew, st)
		}
	}
	var adopt []*jobState
	remaining := s.deferred[:0]
	for _, st := range s.deferred {
		if st.foreignLeaseUntil <= nowMS {
			adopt = append(adopt, st)
		} else {
			remaining = append(remaining, st)
		}
	}
	s.deferred = remaining
	for _, st := range adopt {
		st.foreignLeaseUntil = 0
		// The shared cache may have the answer by now (the old owner
		// finished but crashed before journaling "done").
		if s.cache != nil && !st.spec.Soundness {
			if hit, ok := s.cache.Get(st.id); ok {
				st.status = StatusDone
				st.result = hit
				st.cached = true
				close(st.done)
				continue
			}
		}
		s.adopted.Add(1)
		s.leaseJob(st)
		s.sched.pushForce(st.tq, st)
		st.tq.admitted++
	}
	if len(adopt) > 0 {
		s.cond.Broadcast()
	}
	s.mu.Unlock()
	for _, st := range renew {
		s.leaseJob(st)
	}
}

// tenantLocked returns (creating if needed) the tenant's queue.
func (s *Server) tenantLocked(name string) *tenantQ {
	if name == "" {
		name = DefaultTenant
	}
	return s.sched.tenant(name, s.tcfg.weightFor(name), s.tcfg.Quota, s.tcfg.QueueDepth)
}

// Close stops accepting jobs, evicts admitted-unstarted jobs with a
// terminal retryable rejection (so long-pollers wake immediately and
// dispatchers re-dispatch instead of hanging until timeout), cancels
// in-flight simulations (they fail with a retryable shutdown error),
// waits for the workers to exit, releases this instance's leases, and
// compacts the journal. Evicted jobs stay "admitted" in the journal on
// purpose: a restart re-queues and finishes them — and the released
// leases tell a successor it may adopt them immediately instead of
// waiting out the lease TTL.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.cancel()
	for _, st := range s.sched.drain() {
		st.status = StatusRejected
		st.errMsg = "server closing: job was admitted but never started"
		st.retryable = true
		st.tq.rejected++
		s.rejected.Add(1)
		close(st.done)
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
	if s.store != nil {
		// Drain handoff: release every lease this instance still holds on
		// an incomplete job. Deferred jobs keep their foreign lease — they
		// were never ours to release.
		s.mu.Lock()
		var release []*jobState
		for _, st := range s.jobs {
			// Incomplete from the journal's point of view: evicted
			// (rejected), queued, or failed retryably at shutdown. Done and
			// deterministic failures already cleared their lease with the
			// terminal record.
			incomplete := st.status == StatusRejected || st.status == StatusQueued ||
				st.status == StatusRunning || (st.status == StatusFailed && st.retryable)
			if incomplete && st.foreignLeaseUntil == 0 && st.ownLeaseUntil.Load() > 0 {
				release = append(release, st)
			}
		}
		s.mu.Unlock()
		for _, st := range release {
			if err := s.store.Append(jobstore.Record{State: jobstore.StateReleased, ID: st.id}); err != nil {
				s.journalErrs.Add(1)
			}
		}
		// Best-effort: a failed compaction leaves a longer but complete
		// journal, which replays identically.
		s.store.Compact()
	}
}

// worker pulls jobs off the fair scheduler until the server closes.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		st := s.dequeue()
		if st == nil {
			return
		}
		s.execute(st)
		s.mu.Lock()
		st.tq.running--
		s.mu.Unlock()
		// A freed quota slot may unblock a quota-bound tenant.
		s.cond.Broadcast()
	}
}

// dequeue blocks until the DRR scheduler yields a job or the server
// closes (nil).
func (s *Server) dequeue() *jobState {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if st, _ := s.sched.pop(); st != nil {
			return st
		}
		if s.closed {
			return nil
		}
		s.cond.Wait()
	}
}

// journal appends one lifecycle record, best-effort: an append failure
// degrades durability (counted, visible in /v1/healthz) but must not
// fail the job — the simulation result is still correct.
func (s *Server) journal(rec jobstore.Record) {
	if s.store == nil {
		return
	}
	if err := s.store.Append(rec); err != nil {
		s.journalErrs.Add(1)
	}
}

// execute runs one admitted job to its terminal state.
func (s *Server) execute(st *jobState) {
	if err := s.ctx.Err(); err != nil {
		s.finish(st, nil, fmt.Sprintf("server shutting down: %v", err), true)
		return
	}
	if s.cache != nil && !st.spec.Soundness {
		// Late re-check: between admission and execution a peer (or a
		// Tiered store's fetch) may have landed this result. A warm fleet
		// run must re-simulate nothing, even for jobs that were queued
		// before the peer's answer arrived.
		if hit, ok := s.cache.Get(st.id); ok {
			s.cacheHits.Add(1)
			s.mu.Lock()
			st.cached = true
			s.mu.Unlock()
			s.finish(st, hit, "", false)
			return
		}
	}
	s.mu.Lock()
	st.status = StatusRunning
	s.mu.Unlock()
	s.journal(jobstore.Record{State: jobstore.StateRunning, ID: st.id})

	var sampler *telemetry.Sampler
	if s.telCfg != nil {
		// Registered before the run starts so /v1/telemetry?job=ID watches
		// the series fill in while the job executes.
		sampler = telemetry.New(*s.telCfg)
		s.reg.Register(st.id, sampler)
	}
	res, err := experiments.ExecuteJobWithSampler(s.ctx, st.spec, sampler)
	if err != nil {
		// A cancellation is environmental — another backend can still run
		// the job. Anything else is deterministic: the same spec would
		// fail the same way anywhere.
		retryable := s.ctx.Err() != nil
		s.finish(st, nil, err.Error(), retryable)
		return
	}
	s.executed.Add(1)
	if s.cache != nil && !st.spec.Soundness {
		// Best-effort, but ordered before the journal's done record: once
		// "done" is durable, the result must be durable too (resume treats
		// a cache hit as the job's completion certificate).
		s.cache.Put(st.id, res)
	}
	s.finish(st, res, "", false)
}

// finish publishes a job's terminal state, journals it, and wakes every
// waiter.
func (s *Server) finish(st *jobState, res *core.Result, errMsg string, retryable bool) {
	s.mu.Lock()
	st.result = res
	st.errMsg = errMsg
	st.retryable = retryable
	if errMsg == "" {
		st.status = StatusDone
	} else {
		st.status = StatusFailed
	}
	s.mu.Unlock()
	if errMsg == "" {
		s.journal(jobstore.Record{State: jobstore.StateDone, ID: st.id})
	} else if !retryable {
		// Retryable failures (shutdown, cancellation) stay non-terminal in
		// the journal so a restart re-queues them; only deterministic
		// failures are worth persisting.
		s.journal(jobstore.Record{State: jobstore.StateFailed, ID: st.id, Error: errMsg})
	}
	close(st.done)
}

// admit registers one submitted spec under a tenant and returns its wire
// status: an existing job (idempotent resubmit, whichever tenant got
// there first), a cache answer, a queued admission, or a backpressure
// rejection.
func (s *Server) admit(spec experiments.JobSpec, tenant string) JobStatus {
	if err := spec.Validate(); err != nil {
		// Invalid specs are rejected before they get an ID of their own:
		// the error is deterministic and the client must fix the spec.
		return JobStatus{ID: spec.CacheKey(), Status: StatusFailed, Error: err.Error()}
	}
	id := spec.CacheKey()
	s.mu.Lock()
	if st, ok := s.jobs[id]; ok {
		js := s.statusLocked(st)
		s.mu.Unlock()
		return js
	}
	s.mu.Unlock()

	// Probe the store outside the server lock: a Tiered store may fetch
	// from peers, and a network round-trip must never stall admission of
	// unrelated jobs. (Tiered singleflights, so concurrent identical
	// admits still cost one fetch.)
	var hit *core.Result
	if s.cache != nil && !spec.Soundness {
		hit, _ = s.cache.Get(id)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if st, ok := s.jobs[id]; ok {
		return s.statusLocked(st) // identical admit raced us while probing
	}
	if s.closed {
		s.rejected.Add(1)
		return JobStatus{ID: id, Status: StatusRejected, Tenant: tenant, Error: "server closed", Retryable: true}
	}
	tq := s.tenantLocked(tenant)
	st := &jobState{id: id, spec: spec, tenant: tenant, tq: tq, status: StatusQueued, done: make(chan struct{})}
	if hit != nil {
		s.cacheHits.Add(1)
		st.status = StatusDone
		st.result = hit
		st.cached = true
		close(st.done)
		s.jobs[id] = st
		return s.statusLocked(st)
	}
	if tq.depth > 0 && len(tq.queue) >= tq.depth {
		tq.rejected++
		s.rejected.Add(1)
		return JobStatus{ID: id, Status: StatusRejected, Tenant: tenant,
			Error: fmt.Sprintf("tenant %q queue full (%d)", tq.name, tq.depth), Retryable: true}
	}
	if s.store != nil {
		// Durability before visibility: the admission must survive a crash
		// before the client is told "queued".
		specJSON, err := json.Marshal(spec)
		if err == nil {
			err = s.store.Append(jobstore.Record{
				State: jobstore.StateAdmitted, ID: id, Tenant: tq.name, Spec: specJSON,
			})
		}
		if err != nil {
			s.journalErrs.Add(1)
			tq.rejected++
			s.rejected.Add(1)
			return JobStatus{ID: id, Status: StatusRejected, Tenant: tenant,
				Error: fmt.Sprintf("journal admission: %v", err), Retryable: true}
		}
		// Claim the job for this instance so a peer opening the store after
		// a handoff can tell live work from abandoned work.
		s.leaseJob(st)
	}
	s.sched.push(tq, st)
	tq.admitted++
	s.jobs[id] = st
	s.cond.Signal()
	return s.statusLocked(st)
}

// statusLocked snapshots a job's wire status; callers hold mu.
func (s *Server) statusLocked(st *jobState) JobStatus {
	return JobStatus{
		ID:        st.id,
		Status:    st.status,
		Tenant:    st.tenant,
		Cached:    st.cached,
		Error:     st.errMsg,
		Retryable: st.retryable,
	}
}

// lookup returns a job by id.
func (s *Server) lookup(id string) (*jobState, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.jobs[id]
	return st, ok
}

// routes wires the handler table.
func (s *Server) routes() {
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /v1/cache/{key}", s.handleCacheGet)
	s.mux.HandleFunc("PUT /v1/cache/{key}", s.handleCachePut)
	s.mux.HandleFunc("GET /v1/version", s.handleVersion)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealth)
	s.mux.HandleFunc("GET /v1/telemetry", s.handleTelemetry)
}

// ServeHTTP dispatches to the /v1 API.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// maxSubmitBytes bounds a submit body; a full-matrix batch of specs is a
// few hundred KB, so 32 MiB is generous without being unbounded.
const maxSubmitBytes = 32 << 20

// maxTenantName bounds the tenant header; it is a queue label, not data.
const maxTenantName = 64

// tenantFrom extracts and sanity-checks the submitting tenant.
func tenantFrom(r *http.Request) (string, error) {
	t := r.Header.Get(TenantHeader)
	if t == "" {
		return DefaultTenant, nil
	}
	if len(t) > maxTenantName {
		return "", fmt.Errorf("tenant name longer than %d bytes", maxTenantName)
	}
	for _, c := range t {
		if c < 0x21 || c > 0x7e {
			return "", fmt.Errorf("tenant name has non-printable or space characters")
		}
	}
	return t, nil
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	tenant, err := tenantFrom(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, CodeBadRequest, false, fmt.Errorf("bad %s: %w", TenantHeader, err))
		return
	}
	var req SubmitRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSubmitBytes))
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, CodeBadRequest, false, fmt.Errorf("decode submit: %w", err))
		return
	}
	if len(req.Jobs) == 0 {
		httpError(w, http.StatusBadRequest, CodeBadRequest, false, fmt.Errorf("submit has no jobs"))
		return
	}
	resp := ListResponse{Jobs: make([]JobStatus, 0, len(req.Jobs))}
	rejected := 0
	for _, spec := range req.Jobs {
		js := s.admit(spec, tenant)
		if js.Status == StatusRejected {
			rejected++
		}
		resp.Jobs = append(resp.Jobs, js)
	}
	code := http.StatusOK
	if rejected == len(req.Jobs) {
		// Nothing was admitted: surface the backpressure at the HTTP layer
		// too, with a load-derived Retry-After so plain clients (and the
		// Dispatcher) back off for about as long as the queue needs to
		// drain instead of hammering a fixed schedule.
		code = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
	}
	writeJSON(w, code, resp)
}

// retryAfterSeconds estimates how long a rejected client should wait:
// proportional to the queue backlog per worker, clamped to [1, 30].
func (s *Server) retryAfterSeconds() int {
	s.mu.Lock()
	backlog := s.sched.queued
	s.mu.Unlock()
	secs := 1 + backlog/(2*s.workers)
	if secs > 30 {
		secs = 30
	}
	return secs
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	resp := ListResponse{Jobs: make([]JobStatus, 0, len(s.jobs))}
	for _, st := range s.jobs {
		resp.Jobs = append(resp.Jobs, s.statusLocked(st))
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

// maxWait caps ?wait= long polls so a dead client cannot pin a handler.
const maxWait = time.Minute

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	st, ok := s.lookup(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, CodeNotFound, false, fmt.Errorf("unknown job"))
		return
	}
	if waitStr := r.URL.Query().Get("wait"); waitStr != "" {
		wait, err := time.ParseDuration(waitStr)
		if err != nil {
			httpError(w, http.StatusBadRequest, CodeBadRequest, false, fmt.Errorf("bad wait: %w", err))
			return
		}
		if wait > maxWait {
			wait = maxWait
		}
		// Long poll: return early on a terminal state, else at the
		// deadline with whatever state the job is in.
		t := time.NewTimer(wait)
		defer t.Stop()
		select {
		case <-st.done:
		case <-t.C:
		case <-r.Context().Done():
		}
	}
	s.mu.Lock()
	js := s.statusLocked(st)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, js)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	st, ok := s.lookup(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, CodeNotFound, false, fmt.Errorf("unknown job"))
		return
	}
	s.mu.Lock()
	status, res, errMsg := st.status, st.result, st.errMsg
	s.mu.Unlock()
	switch status {
	case StatusDone:
		writeJSON(w, http.StatusOK, res)
	case StatusFailed:
		httpError(w, http.StatusInternalServerError, CodeJobFailed, false, fmt.Errorf("job failed: %s", errMsg))
	default:
		httpError(w, http.StatusConflict, CodeConflict, true, fmt.Errorf("job %s", status))
	}
}

// Stats snapshots the server's health, including the per-tenant
// depth/served breakdown. It is the same structure /v1/healthz serves.
func (s *Server) Stats() Health {
	s.mu.Lock()
	h := Health{
		OK:       !s.closed,
		Workers:  s.workers,
		QueueCap: s.queueCap,
		Queued:   s.sched.queued,
		Tenants:  make(map[string]TenantHealth, len(s.sched.ring)),
	}
	for _, st := range s.jobs {
		switch st.status {
		case StatusRunning:
			h.Running++
		case StatusDone:
			h.Done++
		case StatusFailed:
			h.Failed++
		}
	}
	for _, tq := range s.sched.ring {
		h.Tenants[tq.name] = TenantHealth{
			Weight:   tq.weight,
			Quota:    tq.quota,
			QueueCap: tq.depth,
			Queued:   len(tq.queue),
			Running:  tq.running,
			Admitted: tq.admitted,
			Served:   tq.served,
			Rejected: tq.rejected,
		}
	}
	h.ResumedDone = s.resumedDone
	h.ResumedRequeued = s.resumedRequeued
	deferredNow := len(s.deferred)
	s.mu.Unlock()
	h.Executed = s.executed.Load()
	h.CacheHits = s.cacheHits.Load()
	h.Rejected = s.rejected.Load()
	h.JournalErrors = s.journalErrs.Load()
	h.Instance = s.instance
	h.Adopted = s.adopted.Load()
	h.Deferred = uint64(deferredNow)
	if _, tiered := s.cache.(*resultcache.Tiered); tiered {
		stats := s.cache.Stats()
		h.PeerCache = &stats
	}
	return h
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// counterSnapshot feeds the telemetry registry's service-counter view:
// flat name → value, one row per global counter plus per-tenant
// depth/served gauges.
func (s *Server) counterSnapshot() map[string]int64 {
	h := s.Stats()
	out := map[string]int64{
		"jobs_executed":   int64(h.Executed),
		"jobs_cache_hits": int64(h.CacheHits),
		"jobs_rejected":   int64(h.Rejected),
		"jobs_adopted":    int64(h.Adopted),
		"jobs_deferred":   int64(h.Deferred),
		"queue_depth":     int64(h.Queued),
		"journal_errors":  int64(h.JournalErrors),
	}
	if pc := h.PeerCache; pc != nil {
		out["peer_cache_hits"] = int64(pc.PeerHits)
		out["peer_cache_errors"] = int64(pc.PeerErrors)
		out["peer_cache_negative_hits"] = int64(pc.NegativeHits)
	}
	for name, th := range h.Tenants {
		out["tenant_"+name+"_queued"] = int64(th.Queued)
		out["tenant_"+name+"_running"] = int64(th.Running)
		out["tenant_"+name+"_admitted"] = int64(th.Admitted)
		out["tenant_"+name+"_served"] = int64(th.Served)
		out["tenant_"+name+"_rejected"] = int64(th.Rejected)
	}
	return out
}

func (s *Server) handleTelemetry(w http.ResponseWriter, r *http.Request) {
	if s.reg == nil {
		httpError(w, http.StatusNotFound, CodeUnavailable, false, fmt.Errorf("telemetry disabled (start the server with a telemetry config)"))
		return
	}
	s.reg.ServeHTTP(w, r)
}

// Executed counts simulations actually run (cache hits excluded).
func (s *Server) Executed() uint64 { return s.executed.Load() }

// writeJSON renders v with the given status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// httpError renders the structured ErrorEnvelope every endpoint shares.
func httpError(w http.ResponseWriter, status int, code string, retryable bool, err error) {
	writeJSON(w, status, ErrorEnvelope{Code: code, Message: err.Error(), Retryable: retryable})
}

// rawGetter is the optional raw-entry access a Store provides for the
// peer cache endpoint (the disk Cache and the local tier of a Tiered
// store both do).
type rawGetter interface {
	GetRaw(key string) ([]byte, bool)
}

// cacheKeyShape sanity-checks a /v1/cache/{key} path element: keys are
// hex SHA-256 digests, nothing else reaches the filesystem.
func cacheKeyShape(key string) bool {
	if len(key) != sha256.Size*2 {
		return false
	}
	for _, c := range key {
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'f':
		default:
			return false
		}
	}
	return true
}

// maxCacheEntryBytes bounds a PUT /v1/cache body; entries are a few KB of
// JSON stats, so 16 MiB is generous without being unbounded.
const maxCacheEntryBytes = 16 << 20

// handleCacheGet serves one raw cache entry to a fetching peer, with the
// body hash and format version in headers so the peer verifies the
// transfer end-to-end before trusting it. Peer traffic bypasses the
// hit/miss counters — it is accounted on the requesting instance.
func (s *Server) handleCacheGet(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !cacheKeyShape(key) {
		httpError(w, http.StatusBadRequest, CodeBadRequest, false, fmt.Errorf("cache key must be a hex sha256"))
		return
	}
	rg, ok := s.cache.(rawGetter)
	if s.cache == nil || !ok {
		httpError(w, http.StatusNotFound, CodeUnavailable, false, fmt.Errorf("no raw-capable result cache on this instance"))
		return
	}
	body, ok := rg.GetRaw(key)
	if !ok {
		httpError(w, http.StatusNotFound, CodeNotFound, false, fmt.Errorf("cache miss"))
		return
	}
	sum := sha256.Sum256(body)
	w.Header().Set(CacheSumHeader, hex.EncodeToString(sum[:]))
	w.Header().Set(CacheFormatHeader, strconv.Itoa(resultcache.FormatVersion))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

// handleCachePut accepts one pushed entry, verifying hash, format, and
// decode before it can reach the store — a corrupt or version-skewed body
// fails closed without side effects.
func (s *Server) handleCachePut(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !cacheKeyShape(key) {
		httpError(w, http.StatusBadRequest, CodeBadRequest, false, fmt.Errorf("cache key must be a hex sha256"))
		return
	}
	if s.cache == nil {
		httpError(w, http.StatusNotFound, CodeUnavailable, false, fmt.Errorf("no result cache on this instance"))
		return
	}
	if f := r.Header.Get(CacheFormatHeader); f != "" && f != strconv.Itoa(resultcache.FormatVersion) {
		httpError(w, http.StatusBadRequest, CodeBadEntry, false,
			fmt.Errorf("cache format %s, this instance speaks %d", f, resultcache.FormatVersion))
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxCacheEntryBytes))
	if err != nil {
		httpError(w, http.StatusBadRequest, CodeBadRequest, false, fmt.Errorf("read entry: %w", err))
		return
	}
	sum := sha256.Sum256(body)
	if claimed := r.Header.Get(CacheSumHeader); claimed != hex.EncodeToString(sum[:]) {
		httpError(w, http.StatusBadRequest, CodeBadEntry, false,
			fmt.Errorf("entry body does not match its %s header", CacheSumHeader))
		return
	}
	res, err := resultcache.DecodeEntry(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, CodeBadEntry, false, err)
		return
	}
	if err := s.cache.Put(key, res); err != nil {
		httpError(w, http.StatusInternalServerError, CodeInternal, true, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleVersion reports the version tuple peers compare before
// interoperating.
func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, VersionInfo{
		Protocol:      ProtocolVersion,
		CacheFormat:   resultcache.FormatVersion,
		JournalFormat: jobstore.FormatVersion,
		Instance:      s.instance,
	})
}
