package dserve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"dmdc/internal/experiments"
	"dmdc/internal/jobstore"
	"dmdc/internal/resultcache"
)

// fleetMatrix is the small cold matrix the fleet tests share: enough
// cells to exercise concurrency, cheap enough to run under -race.
func fleetMatrix() []experiments.JobSpec {
	var specs []experiments.JobSpec
	for _, pol := range []string{"baseline", "dmdc"} {
		for _, b := range []string{"gzip", "swim", "mcf"} {
			sp := quickSpec(b)
			sp.Policy = pol
			specs = append(specs, sp)
		}
	}
	return specs
}

// fleetInstance is one in-process dmdcd: a Server over its own disk
// cache, optionally tiered over peers, behind a real HTTP listener.
type fleetInstance struct {
	srv    *Server
	ts     *httptest.Server
	tiered *resultcache.Tiered // nil when the instance has no peers
}

// newFleetInstance builds an instance whose store tiers over the given
// peer base URLs (none means a plain disk cache).
func newFleetInstance(t *testing.T, peerURLs ...string) *fleetInstance {
	t.Helper()
	local := openTestCache(t)
	var cache resultcache.Store = local
	var tiered *resultcache.Tiered
	if len(peerURLs) > 0 {
		var peers []resultcache.Peer
		for _, u := range peerURLs {
			peers = append(peers, NewCachePeer(u, nil))
		}
		var err error
		tiered, err = resultcache.NewTiered(resultcache.TieredConfig{Local: local, Peers: peers})
		if err != nil {
			t.Fatalf("NewTiered: %v", err)
		}
		cache = tiered
	}
	srv := newTestServer(t, ServerConfig{Workers: 2, Cache: cache})
	ts := httptest.NewServer(srv)
	t.Cleanup(func() { srv.Close(); ts.Close() })
	return &fleetInstance{srv: srv, ts: ts, tiered: tiered}
}

// runMatrix submits specs and drives every job to done, returning each
// job's canonicalized result bytes keyed by job ID.
func runMatrix(t *testing.T, base string, specs []experiments.JobSpec) map[string]string {
	t.Helper()
	lr, _ := submit(t, base, specs...)
	if len(lr.Jobs) != len(specs) {
		t.Fatalf("submitted %d cells, got %d statuses", len(specs), len(lr.Jobs))
	}
	out := make(map[string]string, len(lr.Jobs))
	for _, js := range lr.Jobs {
		deadline := time.Now().Add(2 * time.Minute)
		for !js.Status.Terminal() {
			if time.Now().After(deadline) {
				t.Fatalf("cell %s stuck in %s", js.ID, js.Status)
			}
			js = getStatus(t, base, js.ID, "10s")
		}
		if js.Status != StatusDone {
			t.Fatalf("cell %s ended %s (%s)", js.ID, js.Status, js.Error)
		}
		out[js.ID] = fetchResult(t, base, js.ID)
	}
	return out
}

// fetchResult GETs one finished job's result, canonicalized.
func fetchResult(t *testing.T, base, id string) string {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatalf("fetch result %s: %v", id, err)
	}
	defer resp.Body.Close()
	var raw json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatalf("decode result %s (%s): %v", id, resp.Status, err)
	}
	return mustCompact(t, raw)
}

// TestFleetPeerFetchDedup is the fleet dedup acceptance gate: instance A
// runs the matrix cold; B (peering with A) and C (peering with B) then
// run the identical matrix with ZERO re-simulations — every cell arrives
// over GET /v1/cache, verified, written back, and byte-identical.
func TestFleetPeerFetchDedup(t *testing.T) {
	t.Parallel()
	specs := fleetMatrix()

	a := newFleetInstance(t)
	cold := runMatrix(t, a.ts.URL, specs)
	if got := a.srv.Executed(); got != uint64(len(specs)) {
		t.Fatalf("cold instance executed %d cells, want %d", got, len(specs))
	}

	// B tiers over A: the warm re-run must not simulate anything.
	b := newFleetInstance(t, a.ts.URL)
	warmB := runMatrix(t, b.ts.URL, specs)
	if got := b.srv.Executed(); got != 0 {
		t.Fatalf("peer-warm instance B re-simulated %d cells, want 0", got)
	}
	bs := b.tiered.Stats()
	if bs.PeerHits != uint64(len(specs)) {
		t.Fatalf("B peer hits = %d, want %d (the counters must prove the fetch path ran)", bs.PeerHits, len(specs))
	}
	if bs.PeerErrors != 0 {
		t.Fatalf("B peer errors = %d, want 0", bs.PeerErrors)
	}

	// C tiers over B only: B's write-back must make it a full peer source.
	c := newFleetInstance(t, b.ts.URL)
	warmC := runMatrix(t, c.ts.URL, specs)
	if got := c.srv.Executed(); got != 0 {
		t.Fatalf("peer-warm instance C re-simulated %d cells, want 0", got)
	}
	if cs := c.tiered.Stats(); cs.PeerHits != uint64(len(specs)) {
		t.Fatalf("C peer hits = %d, want %d", cs.PeerHits, len(specs))
	}

	for id, want := range cold {
		if warmB[id] != want {
			t.Errorf("cell %s: B's fetched result diverged from A's", id)
		}
		if warmC[id] != want {
			t.Errorf("cell %s: C's fetched result diverged from A's", id)
		}
	}

	// A second pass on B is now a pure local-tier hit: no new peer traffic.
	runMatrix(t, b.ts.URL, specs)
	if after := b.tiered.Stats(); after.PeerHits != bs.PeerHits {
		t.Fatalf("second warm pass fetched %d more entries from peers, want local hits only",
			after.PeerHits-bs.PeerHits)
	}

	// Mixed-version guard: every instance must agree on the version tuple
	// peers compare before interoperating.
	for _, inst := range []*fleetInstance{a, b, c} {
		v, err := NewCachePeer(inst.ts.URL, nil).Version(context.Background())
		if err != nil {
			t.Fatalf("version: %v", err)
		}
		if v.Protocol != ProtocolVersion || v.CacheFormat != resultcache.FormatVersion ||
			v.JournalFormat != jobstore.FormatVersion {
			t.Fatalf("version tuple %+v does not match this build", v)
		}
	}
}

// TestFleetSharedStoreHandoff drains a matrix across three instances
// sharing one journal and one result cache: each Close releases the
// dying instance's leases so the successor adopts its admitted-but-
// unfinished jobs immediately. Zero lost (every cell reaches done),
// zero duplicated (the fleet-wide execution count equals the cell
// count), byte-identical (results match a local run).
func TestFleetSharedStoreHandoff(t *testing.T) {
	t.Parallel()
	storeDir, cacheDir := t.TempDir(), t.TempDir()
	open := func() (*jobstore.Store, *resultcache.Cache) {
		st, _, err := jobstore.Open(storeDir, jobstore.Options{})
		if err != nil {
			t.Fatalf("open store: %v", err)
		}
		c, err := resultcache.Open(cacheDir)
		if err != nil {
			t.Fatalf("open cache: %v", err)
		}
		return st, c
	}

	// Instance a: finish one cell, then drain with a medium cell holding
	// the single worker and three more queued behind it.
	storeA, cacheA := open()
	srvA := newTestServer(t, ServerConfig{Workers: 1, Cache: cacheA, Store: storeA, Instance: "a"})
	tsA := httptest.NewServer(srvA)
	first, _ := submit(t, tsA.URL, quickSpec("gzip"))
	if js := getStatus(t, tsA.URL, first.Jobs[0].ID, "30s"); js.Status != StatusDone {
		t.Fatalf("warm-up cell ended %s (%s)", js.Status, js.Error)
	}
	pending, _ := submit(t, tsA.URL, mediumSpec("art"), quickSpec("gcc"), quickSpec("swim"), quickSpec("mcf"))
	ids := []string{first.Jobs[0].ID}
	for _, js := range pending.Jobs {
		ids = append(ids, js.ID)
	}
	srvA.Close()
	tsA.Close()
	executedA := srvA.Executed()
	storeA.Close()

	// The drain must have released every incomplete job's lease: a
	// successor reads the journal and sees no owner to wait out.
	storeCheck, _, err := jobstore.Open(storeDir, jobstore.Options{})
	if err != nil {
		t.Fatalf("reopen store: %v", err)
	}
	for _, jr := range storeCheck.Jobs() {
		if jr.State != jobstore.StateDone && jr.Owner != "" {
			t.Fatalf("incomplete job %s still leased by %q after drain", jr.ID, jr.Owner)
		}
	}
	storeCheck.Close()

	// Instance b adopts instantly, works briefly, and drains in turn.
	storeB, cacheB := open()
	srvB := newTestServer(t, ServerConfig{Workers: 1, Cache: cacheB, Store: storeB, Instance: "b"})
	hb := srvB.Stats()
	if hb.Instance != "b" {
		t.Fatalf("instance label = %q, want b", hb.Instance)
	}
	if hb.ResumedRequeued == 0 {
		t.Fatal("instance b adopted nothing; the handoff had nothing to prove")
	}
	// Let b make some progress (at least one adopted cell) before it
	// hands off again.
	deadline := time.Now().Add(time.Minute)
	for srvB.Executed() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("instance b never executed an adopted cell")
		}
		time.Sleep(5 * time.Millisecond)
	}
	srvB.Close()
	executedB := srvB.Executed()
	storeB.Close()

	// Instance c finishes whatever is left.
	storeC, cacheC := open()
	srvC := newTestServer(t, ServerConfig{Workers: 2, Cache: cacheC, Store: storeC, Instance: "c"})
	defer srvC.Close()
	defer storeC.Close()
	tsC := httptest.NewServer(srvC)
	defer tsC.Close()

	specs := map[string]experiments.JobSpec{
		first.Jobs[0].ID: quickSpec("gzip"),
		pending.Jobs[0].ID: mediumSpec("art"),
		pending.Jobs[1].ID: quickSpec("gcc"),
		pending.Jobs[2].ID: quickSpec("swim"),
		pending.Jobs[3].ID: quickSpec("mcf"),
	}
	for _, id := range ids {
		js := getStatus(t, tsC.URL, id, "60s")
		pollDeadline := time.Now().Add(2 * time.Minute)
		for !js.Status.Terminal() {
			if time.Now().After(pollDeadline) {
				t.Fatalf("cell %s stuck in %s on instance c", id, js.Status)
			}
			js = getStatus(t, tsC.URL, id, "60s")
		}
		if js.Status != StatusDone {
			t.Fatalf("cell %s ended %s (%s) after two handoffs", id, js.Status, js.Error)
		}
		got := fetchResult(t, tsC.URL, id)
		local, err := experiments.ExecuteJob(context.Background(), specs[id])
		if err != nil {
			t.Fatal(err)
		}
		want, _ := json.Marshal(local)
		if got != mustCompact(t, want) {
			t.Errorf("cell %s: handed-off result diverged from local", id)
		}
	}

	// Zero duplicated: across the whole fleet each cell simulated once.
	total := executedA + executedB + srvC.Executed()
	if total != uint64(len(ids)) {
		t.Fatalf("fleet executed %d simulations for %d cells (a=%d b=%d c=%d) — lost or duplicated work",
			total, len(ids), executedA, executedB, srvC.Executed())
	}
}

// TestFleetLeakedLeaseAdoption covers the crashed-peer case: the journal
// holds jobs leased by an instance that died without releasing them. A
// successor must defer those jobs while the lease is live (the owner may
// still be computing) and adopt them the moment it lapses — never
// duplicating a possibly-running job, never losing it either.
func TestFleetLeakedLeaseAdoption(t *testing.T) {
	t.Parallel()
	storeDir := t.TempDir()
	store, _, err := jobstore.Open(storeDir, jobstore.Options{})
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	specs := []experiments.JobSpec{quickSpec("gzip"), quickSpec("swim")}
	leaseUntil := time.Now().Add(600 * time.Millisecond).UnixMilli()
	for _, sp := range specs {
		specJSON, _ := json.Marshal(sp)
		id := sp.CacheKey()
		if err := store.Append(jobstore.Record{
			State: jobstore.StateAdmitted, ID: id, Tenant: "ghost-tenant", Spec: specJSON,
		}); err != nil {
			t.Fatalf("append admitted: %v", err)
		}
		if err := store.Append(jobstore.Record{
			State: jobstore.StateLeased, ID: id, Owner: "ghost", LeaseUntil: leaseUntil,
		}); err != nil {
			t.Fatalf("append leased: %v", err)
		}
	}
	store.Close()

	store2, _, err := jobstore.Open(storeDir, jobstore.Options{})
	if err != nil {
		t.Fatalf("reopen store: %v", err)
	}
	defer store2.Close()
	srv := newTestServer(t, ServerConfig{
		Workers: 2, Cache: openTestCache(t), Store: store2,
		Instance: "successor", LeaseTTL: 200 * time.Millisecond,
	})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// While the ghost's lease is live the jobs are deferred, not run.
	h := srv.Stats()
	if h.Deferred != uint64(len(specs)) {
		t.Fatalf("deferred %d jobs at open, want %d (live foreign leases must not be adopted)",
			h.Deferred, len(specs))
	}
	if h.Adopted != 0 {
		t.Fatalf("adopted %d jobs while the foreign lease was live", h.Adopted)
	}

	// After the lease lapses the reclaimer adopts and finishes them.
	for _, sp := range specs {
		id := sp.CacheKey()
		js := getStatus(t, ts.URL, id, "30s")
		deadline := time.Now().Add(time.Minute)
		for !js.Status.Terminal() {
			if time.Now().After(deadline) {
				t.Fatalf("leaked-lease job %s stuck in %s", id, js.Status)
			}
			js = getStatus(t, ts.URL, id, "30s")
		}
		if js.Status != StatusDone {
			t.Fatalf("leaked-lease job %s ended %s (%s)", id, js.Status, js.Error)
		}
		got := fetchResult(t, ts.URL, id)
		local, err := experiments.ExecuteJob(context.Background(), sp)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := json.Marshal(local)
		if got != mustCompact(t, want) {
			t.Errorf("leaked-lease job %s diverged from local", id)
		}
	}
	h = srv.Stats()
	if h.Adopted != uint64(len(specs)) {
		t.Fatalf("adopted = %d after lease expiry, want %d", h.Adopted, len(specs))
	}
	if h.Deferred != 0 {
		t.Fatalf("still deferring %d jobs after adoption", h.Deferred)
	}
}

// TestFleetErrorEnvelope pins the structured error contract every /v1
// endpoint shares: machine-readable code, human message, and an explicit
// retryable verdict.
func TestFleetErrorEnvelope(t *testing.T) {
	t.Parallel()
	inst := newFleetInstance(t)
	for _, tc := range []struct {
		path      string
		status    int
		code      string
		retryable bool
	}{
		{"/v1/jobs/nonesuch", http.StatusNotFound, CodeNotFound, false},
		{"/v1/cache/not-a-hex-key", http.StatusBadRequest, CodeBadRequest, false},
		{"/v1/cache/" + fmt.Sprintf("%064x", 0), http.StatusNotFound, CodeNotFound, false},
		{"/v1/telemetry", http.StatusNotFound, CodeUnavailable, false},
	} {
		resp, err := http.Get(inst.ts.URL + tc.path)
		if err != nil {
			t.Fatalf("GET %s: %v", tc.path, err)
		}
		var env ErrorEnvelope
		derr := json.NewDecoder(resp.Body).Decode(&env)
		resp.Body.Close()
		if derr != nil {
			t.Fatalf("GET %s: non-envelope error body: %v", tc.path, derr)
		}
		if resp.StatusCode != tc.status || env.Code != tc.code || env.Retryable != tc.retryable || env.Message == "" {
			t.Errorf("GET %s = %d %+v, want %d code=%s retryable=%v",
				tc.path, resp.StatusCode, env, tc.status, tc.code, tc.retryable)
		}
	}
}
