package dserve

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"dmdc/internal/config"
	"dmdc/internal/experiments"
)

// TestDistributedSampledEqualsLocal is the sampled-mode counterpart of
// TestDistributedEqualsLocal, with chaos folded in: one logical run's
// detailed intervals are sharded as content-addressed checkpoint jobs
// across two real dmdcd servers, one of which is killed mid-run. The
// aggregated SampledResult must be byte-identical to a single-process
// sampled run — every interval delivered exactly once, none lost to the
// killed server, none duplicated across the fleet.
func TestDistributedSampledEqualsLocal(t *testing.T) {
	t.Parallel()
	sp := experiments.SampleSpec{
		Job: experiments.JobSpec{
			Machine: config.Config1(), Policy: "dmdc", Benchmark: "gcc", Insts: 160_000,
		},
		Intervals:     8,
		IntervalInsts: 4_000,
	}

	local, err := experiments.RunSampled(context.Background(), sp)
	if err != nil {
		t.Fatalf("local sampled run: %v", err)
	}

	// Both servers share one content-addressed cache, so an interval whose
	// result was computed but never delivered (server killed between
	// execute and fetch) is answered from the cache on re-dispatch.
	cache := openTestCache(t)
	srv1 := newTestServer(t, ServerConfig{Workers: 2, Cache: cache})
	ts1 := httptest.NewServer(srv1)
	defer ts1.Close()
	defer srv1.Close()
	srv2 := newTestServer(t, ServerConfig{Workers: 2, Cache: cache})
	defer srv2.Close()
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()

	d, err := NewDispatcher(DispatcherConfig{
		Backends: []experiments.Backend{
			NewRemote(ts1.URL, nil),
			NewRemote(ts2.URL, nil),
		},
		PerBackendInflight: 2,
		MaxAttempts:        10,
		RetryBase:          2 * time.Millisecond,
		RetryMax:           50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Kill server 1 after its first completed interval: in-flight jobs
	// fail retryably and must land on server 2.
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		deadline := time.Now().Add(time.Minute)
		for srv1.Executed() < 1 && time.Now().Before(deadline) {
			time.Sleep(2 * time.Millisecond)
		}
		srv1.Close()
		ts1.CloseClientConnections()
	}()

	dsp := sp
	dsp.Backend = d
	remote, err := experiments.RunSampled(context.Background(), dsp)
	<-killed
	if err != nil {
		t.Fatalf("distributed sampled run: %v", err)
	}

	lb, err := json.MarshalIndent(local, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	rb, err := json.MarshalIndent(remote, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if string(lb) != string(rb) {
		t.Errorf("distributed sampled result diverged from local:\nlocal:\n%s\nremote:\n%s", lb, rb)
	}

	// Zero lost: the aggregate carries every interval in order.
	if len(remote.Intervals) != sp.Intervals {
		t.Fatalf("%d intervals delivered, want %d", len(remote.Intervals), sp.Intervals)
	}
	for i, iv := range remote.Intervals {
		if iv.Index != i {
			t.Errorf("interval %d carries index %d", i, iv.Index)
		}
	}
	// Zero duplicated: the shared cache and content-addressed interval
	// jobs mean each unique interval simulated at most once fleet-wide.
	if e1, e2 := srv1.Executed(), srv2.Executed(); e1+e2 > uint64(sp.Intervals) {
		t.Errorf("fleet executed %d+%d interval jobs for %d unique intervals (duplicates)", e1, e2, sp.Intervals)
	} else if e2 == 0 {
		t.Errorf("intervals were not resharded after the kill: server split %d/%d", e1, e2)
	}
}
