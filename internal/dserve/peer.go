package dserve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"dmdc/internal/resultcache"
)

// CachePeer fetches raw result-cache entries from another dmdcd instance
// over GET /v1/cache/{key}, implementing resultcache.Peer so a Tiered
// store can fall back to the fleet. It returns the body and the peer's
// claimed hash verbatim; the Tiered store re-hashes and fails closed on
// mismatch, so a lying or corrupted peer can degrade performance but
// never correctness.
type CachePeer struct {
	base   string
	client *http.Client
}

// NewCachePeer builds a peer client for the dmdcd server at baseURL
// (e.g. "http://host:8321"). client nil means http.DefaultClient.
func NewCachePeer(baseURL string, client *http.Client) *CachePeer {
	if client == nil {
		client = http.DefaultClient
	}
	return &CachePeer{base: strings.TrimRight(baseURL, "/"), client: client}
}

// Name identifies the peer by its base URL.
func (p *CachePeer) Name() string { return p.base }

// FetchEntry implements resultcache.Peer. A 404 is a clean miss
// (resultcache.ErrPeerMiss); a format-version mismatch in the response
// headers is an error — a peer speaking a different cache format must
// fail closed, not serve stale-semantics results.
func (p *CachePeer) FetchEntry(ctx context.Context, key string) ([]byte, string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.base+"/v1/cache/"+key, nil)
	if err != nil {
		return nil, "", fmt.Errorf("dserve: peer %s: %w", p.base, err)
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return nil, "", fmt.Errorf("dserve: peer %s: %w", p.base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, "", resultcache.ErrPeerMiss
	}
	if resp.StatusCode != http.StatusOK {
		return nil, "", fmt.Errorf("dserve: peer %s: %w", p.base, errBody(resp))
	}
	if f := resp.Header.Get(CacheFormatHeader); f != strconv.Itoa(resultcache.FormatVersion) {
		return nil, "", fmt.Errorf("dserve: peer %s serves cache format %q, this instance speaks %d",
			p.base, f, resultcache.FormatVersion)
	}
	sum := resp.Header.Get(CacheSumHeader)
	if sum == "" {
		return nil, "", fmt.Errorf("dserve: peer %s sent no %s header", p.base, CacheSumHeader)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxCacheEntryBytes+1))
	if err != nil {
		return nil, "", fmt.Errorf("dserve: peer %s: read entry: %w", p.base, err)
	}
	if len(body) > maxCacheEntryBytes {
		return nil, "", fmt.Errorf("dserve: peer %s: entry exceeds %d bytes", p.base, maxCacheEntryBytes)
	}
	return body, sum, nil
}

// Version fetches the peer's version tuple (see VersionInfo).
func (p *CachePeer) Version(ctx context.Context) (*VersionInfo, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.base+"/v1/version", nil)
	if err != nil {
		return nil, fmt.Errorf("dserve: peer %s: %w", p.base, err)
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("dserve: peer %s: %w", p.base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("dserve: peer %s: %w", p.base, errBody(resp))
	}
	var vi VersionInfo
	if err := json.NewDecoder(resp.Body).Decode(&vi); err != nil {
		return nil, fmt.Errorf("dserve: peer %s: decode version: %w", p.base, err)
	}
	return &vi, nil
}
