package dserve

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dmdc/internal/core"
	"dmdc/internal/experiments"
	"dmdc/internal/resultcache"
)

// DispatcherConfig shapes a Dispatcher.
type DispatcherConfig struct {
	// Backends are the execution targets, tried round-robin. At least one
	// is required.
	Backends []experiments.Backend
	// PerBackendInflight bounds concurrent jobs per backend (backpressure:
	// when every backend's window is full, Run blocks). 0 means 4.
	PerBackendInflight int
	// MaxAttempts bounds tries per job across backends, first included.
	// 0 means 4.
	MaxAttempts int
	// RetryBase is the first backoff delay, doubled per retry up to
	// RetryMax. Zero values mean 100ms and 5s.
	RetryBase time.Duration
	RetryMax  time.Duration
	// HedgeAfter, when positive and more than one backend is configured,
	// launches a second attempt of a still-running job on a different
	// backend after this delay; the first result wins. Deterministic
	// simulation makes the two interchangeable, so hedging trades spare
	// capacity for tail latency without correctness risk.
	HedgeAfter time.Duration
	// Cache, when non-nil, answers non-soundness jobs locally before any
	// backend is consulted and stores fetched results, so an interrupted
	// matrix resumes from content-addressed results instead of re-running.
	// Any resultcache.Store works — a Tiered store here makes the
	// dispatcher itself fleet-aware.
	Cache resultcache.Store
}

// DispatcherStats counts dispatcher activity; read with Dispatcher.Stats.
type DispatcherStats struct {
	// Dispatched counts attempts handed to backends (retries and hedges
	// included).
	Dispatched uint64
	// Retries counts re-attempts after retryable failures.
	Retries uint64
	// Hedges counts speculative second attempts launched.
	Hedges uint64
	// CacheHits counts jobs answered from the local cache.
	CacheHits uint64
	// Deduped counts calls that joined an identical in-flight job.
	Deduped uint64
}

// flight is one in-flight job shared by identical concurrent calls.
type flight struct {
	done chan struct{}
	res  *core.Result
	err  error
}

// Dispatcher shards jobs across backends. It implements
// experiments.Backend, so a Suite (or anything else written against the
// interface) can switch from in-process execution to a server fleet by
// swapping one field. Safe for concurrent use.
type Dispatcher struct {
	cfg   DispatcherConfig
	slots []chan struct{} // per-backend in-flight windows
	next  atomic.Uint64   // round-robin cursor

	mu       sync.Mutex
	inflight map[string]*flight

	dispatched atomic.Uint64
	retries    atomic.Uint64
	hedges     atomic.Uint64
	cacheHits  atomic.Uint64
	deduped    atomic.Uint64
}

// NewDispatcher validates cfg and builds a Dispatcher.
func NewDispatcher(cfg DispatcherConfig) (*Dispatcher, error) {
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("dserve: dispatcher needs at least one backend")
	}
	if cfg.PerBackendInflight <= 0 {
		cfg.PerBackendInflight = 4
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 4
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 100 * time.Millisecond
	}
	if cfg.RetryMax <= 0 {
		cfg.RetryMax = 5 * time.Second
	}
	d := &Dispatcher{
		cfg:      cfg,
		slots:    make([]chan struct{}, len(cfg.Backends)),
		inflight: make(map[string]*flight),
	}
	for i := range d.slots {
		d.slots[i] = make(chan struct{}, cfg.PerBackendInflight)
	}
	return d, nil
}

// Name identifies the dispatcher in errors and logs.
func (d *Dispatcher) Name() string { return "dispatcher" }

// Stats snapshots the activity counters.
func (d *Dispatcher) Stats() DispatcherStats {
	return DispatcherStats{
		Dispatched: d.dispatched.Load(),
		Retries:    d.retries.Load(),
		Hedges:     d.hedges.Load(),
		CacheHits:  d.cacheHits.Load(),
		Deduped:    d.deduped.Load(),
	}
}

// Run executes one job: local cache, then in-flight dedupe, then the
// retry/hedge loop over the backends. Identical concurrent jobs share one
// execution (keyed by content address), so a matrix with repeated cells
// never runs a cell twice.
func (d *Dispatcher) Run(ctx context.Context, spec experiments.JobSpec) (*core.Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	key := spec.CacheKey()
	cacheable := d.cfg.Cache != nil && !spec.Soundness
	if cacheable {
		if res, ok := d.cfg.Cache.Get(key); ok {
			d.cacheHits.Add(1)
			return res, nil
		}
	}

	d.mu.Lock()
	if f, ok := d.inflight[key]; ok {
		d.mu.Unlock()
		d.deduped.Add(1)
		select {
		case <-f.done:
			return f.res, f.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	d.inflight[key] = f
	d.mu.Unlock()

	res, err := d.runJob(ctx, spec)
	if err == nil && cacheable {
		d.cfg.Cache.Put(key, res)
	}
	f.res, f.err = res, err
	d.mu.Lock()
	delete(d.inflight, key)
	d.mu.Unlock()
	close(f.done)
	return res, err
}

// runJob is the retry loop: pick a backend, attempt (with hedging), back
// off exponentially on retryable failures, steer the next attempt away
// from the backend that just failed.
func (d *Dispatcher) runJob(ctx context.Context, spec experiments.JobSpec) (*core.Result, error) {
	var lastErr error
	avoid := -1
	backoff := d.cfg.RetryBase
	for attempt := 0; attempt < d.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			d.retries.Add(1)
			// A server that rejected us with a Retry-After hint knows its
			// own backlog better than our exponential guess does; honor the
			// hint (bounded by RetryMax) for this wait, keeping the
			// exponential schedule as the fallback.
			delay := backoff
			if hint, ok := RetryAfterHint(lastErr); ok {
				delay = hint
				if delay > d.cfg.RetryMax {
					delay = d.cfg.RetryMax
				}
			}
			t := time.NewTimer(delay)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return nil, ctx.Err()
			}
			backoff *= 2
			if backoff > d.cfg.RetryMax {
				backoff = d.cfg.RetryMax
			}
		}
		res, failed, err := d.attempt(ctx, spec, avoid)
		if err == nil {
			return res, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if !Retryable(err) {
			return nil, err
		}
		lastErr = err
		avoid = failed
	}
	return nil, fmt.Errorf("dserve: job %s/%s gave up after %d attempts: %w",
		spec.RunKey+spec.Policy, spec.Benchmark, d.cfg.MaxAttempts, lastErr)
}

// pick chooses the next backend round-robin, skipping avoid when another
// backend exists.
func (d *Dispatcher) pick(avoid int) int {
	n := len(d.cfg.Backends)
	i := int(d.next.Add(1)-1) % n
	if i == avoid && n > 1 {
		i = (i + 1) % n
	}
	return i
}

// acquire blocks until backend bi has a free in-flight slot.
func (d *Dispatcher) acquire(ctx context.Context, bi int) error {
	select {
	case d.slots[bi] <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// tryAcquire grabs a slot on backend bi only if one is free right now.
func (d *Dispatcher) tryAcquire(bi int) bool {
	select {
	case d.slots[bi] <- struct{}{}:
		return true
	default:
		return false
	}
}

func (d *Dispatcher) release(bi int) { <-d.slots[bi] }

// attemptResult is one backend attempt's outcome.
type attemptResult struct {
	res *core.Result
	err error
	bi  int
}

// attempt runs spec on one backend, with an optional hedged second
// attempt on a different backend if the first is still running after
// HedgeAfter. The first success wins and cancels the other attempt; on
// total failure it returns the last error and the backend that produced
// it (so the retry loop can steer away).
func (d *Dispatcher) attempt(ctx context.Context, spec experiments.JobSpec, avoid int) (*core.Result, int, error) {
	primary := d.pick(avoid)
	if err := d.acquire(ctx, primary); err != nil {
		return nil, -1, err
	}

	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make(chan attemptResult, 2)
	launch := func(bi int) {
		d.dispatched.Add(1)
		go func() {
			defer d.release(bi)
			res, err := d.cfg.Backends[bi].Run(actx, spec)
			results <- attemptResult{res: res, err: err, bi: bi}
		}()
	}
	launch(primary)
	pending := 1

	var hedgeC <-chan time.Time
	if d.cfg.HedgeAfter > 0 && len(d.cfg.Backends) > 1 {
		t := time.NewTimer(d.cfg.HedgeAfter)
		defer t.Stop()
		hedgeC = t.C
	}

	var lastErr error
	lastBi := primary
	for {
		select {
		case <-hedgeC:
			hedgeC = nil // at most one hedge per attempt
			// Opportunistic: hedge only onto a different backend with a
			// free slot; never steal capacity from fresh work.
			if hi := d.pick(primary); hi != primary && d.tryAcquire(hi) {
				d.hedges.Add(1)
				launch(hi)
				pending++
			}
		case r := <-results:
			pending--
			if r.err == nil {
				// Winner: cancel the loser and drain it in the background
				// (release of its slot happens in its own goroutine).
				cancel()
				return r.res, r.bi, nil
			}
			// A cancellation error after our own ctx died is just the
			// loser reporting; with pending attempts, keep waiting.
			lastErr, lastBi = r.err, r.bi
			if pending == 0 {
				return nil, lastBi, lastErr
			}
		case <-ctx.Done():
			// Callers' cancellation: abandon the attempts (they observe
			// actx) and report.
			cancel()
			return nil, lastBi, ctx.Err()
		}
	}
}
