package dserve

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dmdc/internal/core"
	"dmdc/internal/experiments"
	"dmdc/internal/resultcache"
)

// stubBackend scripts a Backend for dispatcher tests: per-call delay,
// scripted failures, and a call counter.
type stubBackend struct {
	name  string
	delay time.Duration
	calls atomic.Uint64
	// failFirst makes the first N calls fail retryably.
	failFirst int64
	remaining atomic.Int64
	// permanent, when set, fails every call non-retryably.
	permanent bool
	result    *core.Result
	// inflight/peak observe the backend's concurrency.
	inflight atomic.Int64
	peak     atomic.Int64
}

func newStub(name string, delay time.Duration, failFirst int64) *stubBackend {
	s := &stubBackend{name: name, delay: delay, failFirst: failFirst, result: &core.Result{Benchmark: name}}
	s.remaining.Store(failFirst)
	return s
}

func (s *stubBackend) Name() string { return s.name }

func (s *stubBackend) Run(ctx context.Context, spec experiments.JobSpec) (*core.Result, error) {
	s.calls.Add(1)
	n := s.inflight.Add(1)
	defer s.inflight.Add(-1)
	for {
		p := s.peak.Load()
		if n <= p || s.peak.CompareAndSwap(p, n) {
			break
		}
	}
	if s.permanent {
		return nil, &BackendError{Backend: s.name, Err: fmt.Errorf("scripted permanent failure")}
	}
	if s.remaining.Add(-1) >= 0 {
		return nil, &BackendError{Backend: s.name, Retryable: true, Err: fmt.Errorf("scripted retryable failure")}
	}
	if s.delay > 0 {
		t := time.NewTimer(s.delay)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
			return nil, &BackendError{Backend: s.name, Retryable: true, Err: ctx.Err()}
		}
	}
	return s.result, nil
}

// dspec is a distinct valid job per index.
func dspec(i int) experiments.JobSpec {
	return experiments.JobSpec{
		RunKey:    "dmdc-global-config2",
		Benchmark: "gcc",
		Insts:     uint64(1000 + i),
	}
}

// TestDispatcherRetriesRetryable pins the backoff loop: two scripted
// retryable failures, then success, within one Run call.
func TestDispatcherRetriesRetryable(t *testing.T) {
	t.Parallel()
	b := newStub("flaky", 0, 2)
	d, err := NewDispatcher(DispatcherConfig{
		Backends:  []experiments.Backend{b},
		RetryBase: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Run(context.Background(), dspec(0))
	if err != nil || res == nil {
		t.Fatalf("Run: %v", err)
	}
	if st := d.Stats(); st.Retries != 2 || st.Dispatched != 3 {
		t.Fatalf("stats: %+v, want 2 retries / 3 dispatches", st)
	}
}

// TestDispatcherPermanentFailureFast pins that deterministic failures are
// not retried (the same spec would fail identically anywhere).
func TestDispatcherPermanentFailureFast(t *testing.T) {
	t.Parallel()
	b := newStub("broken", 0, 0)
	b.permanent = true
	d, err := NewDispatcher(DispatcherConfig{
		Backends:  []experiments.Backend{b},
		RetryBase: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Run(context.Background(), dspec(0)); err == nil {
		t.Fatal("permanent failure succeeded")
	}
	if got := b.calls.Load(); got != 1 {
		t.Fatalf("permanent failure dispatched %d times, want 1", got)
	}
}

// TestDispatcherGivesUp pins the attempt bound on persistent retryable
// failure.
func TestDispatcherGivesUp(t *testing.T) {
	t.Parallel()
	b := newStub("dead", 0, 1<<30)
	d, err := NewDispatcher(DispatcherConfig{
		Backends:    []experiments.Backend{b},
		MaxAttempts: 3,
		RetryBase:   time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Run(context.Background(), dspec(0)); err == nil {
		t.Fatal("dead backend succeeded")
	}
	if got := b.calls.Load(); got != 3 {
		t.Fatalf("dispatched %d times, want MaxAttempts=3", got)
	}
}

// TestDispatcherHedging pins straggler re-dispatch: with one slow and one
// fast backend, the hedge fires and the fast result wins well before the
// slow backend would have finished.
func TestDispatcherHedging(t *testing.T) {
	t.Parallel()
	slow := newStub("slow", 30*time.Second, 0)
	fast := newStub("fast", 0, 0)
	d, err := NewDispatcher(DispatcherConfig{
		Backends:   []experiments.Backend{slow, fast},
		HedgeAfter: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Pin the round-robin cursor so the primary lands on the slow backend.
	d.next.Store(0)
	start := time.Now()
	res, err := d.Run(context.Background(), dspec(0))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Benchmark != "fast" {
		t.Fatalf("winner %q, want the hedged fast backend", res.Benchmark)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("hedged run took %s", elapsed)
	}
	if st := d.Stats(); st.Hedges != 1 {
		t.Fatalf("stats: %+v, want 1 hedge", st)
	}
}

// TestDispatcherDedupesConcurrent pins in-flight dedupe: identical
// concurrent jobs share one backend execution.
func TestDispatcherDedupesConcurrent(t *testing.T) {
	t.Parallel()
	b := newStub("one", 50*time.Millisecond, 0)
	d, err := NewDispatcher(DispatcherConfig{Backends: []experiments.Backend{b}})
	if err != nil {
		t.Fatal(err)
	}
	const callers = 8
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := d.Run(context.Background(), dspec(7)); err != nil {
				t.Errorf("Run: %v", err)
			}
		}()
	}
	wg.Wait()
	if got := b.calls.Load(); got != 1 {
		t.Fatalf("%d identical jobs dispatched %d executions, want 1", callers, got)
	}
	if st := d.Stats(); st.Deduped != callers-1 {
		t.Fatalf("stats: %+v, want %d deduped", st, callers-1)
	}
}

// TestDispatcherCacheResume pins idempotent resume: a second dispatcher
// sharing the cache directory answers the job without any backend call —
// the content address, not the process, owns the result.
func TestDispatcherCacheResume(t *testing.T) {
	t.Parallel()
	spec := experiments.JobSpec{RunKey: "baseline-config2", Benchmark: "gzip", Insts: 5_000}
	real, err := experiments.ExecuteJob(context.Background(), spec)
	if err != nil {
		t.Fatalf("ExecuteJob: %v", err)
	}
	dir := t.TempDir()
	cache, err := resultcache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	b := newStub("origin", 0, 0)
	b.result = real
	d1, err := NewDispatcher(DispatcherConfig{Backends: []experiments.Backend{b}, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d1.Run(context.Background(), spec); err != nil {
		t.Fatalf("first run: %v", err)
	}
	if b.calls.Load() != 1 {
		t.Fatalf("first run made %d backend calls", b.calls.Load())
	}

	cache2, err := resultcache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := NewDispatcher(DispatcherConfig{Backends: []experiments.Backend{b}, Cache: cache2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d2.Run(context.Background(), spec); err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if got := b.calls.Load(); got != 1 {
		t.Fatalf("resume went to the backend (%d calls), want cache hit", got)
	}
	if st := d2.Stats(); st.CacheHits != 1 {
		t.Fatalf("stats: %+v, want 1 cache hit", st)
	}
}

// TestDispatcherBackpressure pins the bounded in-flight window: with one
// backend and a window of 2, a third concurrent job waits for a slot
// instead of dispatching.
func TestDispatcherBackpressure(t *testing.T) {
	t.Parallel()
	b := newStub("narrow", 40*time.Millisecond, 0)
	d, err := NewDispatcher(DispatcherConfig{
		Backends:           []experiments.Backend{b},
		PerBackendInflight: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := d.Run(context.Background(), dspec(100+i)); err != nil {
				t.Errorf("Run: %v", err)
			}
		}(i)
	}
	wg.Wait()
	if b.calls.Load() != 6 {
		t.Fatalf("ran %d jobs, want 6", b.calls.Load())
	}
	if p := b.peak.Load(); p > 2 {
		t.Fatalf("backend saw %d concurrent jobs, window is 2", p)
	}
}

// TestDispatcherCancellation pins that a canceled caller context unblocks
// Run promptly with ctx.Err.
func TestDispatcherCancellation(t *testing.T) {
	t.Parallel()
	b := newStub("slowpoke", 30*time.Second, 0)
	d, err := NewDispatcher(DispatcherConfig{Backends: []experiments.Backend{b}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	time.AfterFunc(10*time.Millisecond, cancel)
	start := time.Now()
	if _, err := d.Run(ctx, dspec(0)); err == nil {
		t.Fatal("canceled run succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %s", elapsed)
	}
}

// TestDispatcherHedgeRaceStress pins the audited hedge interleavings
// under the race detector (run via `go test -race`, as `make check`
// does): many concurrent distinct jobs over jittery backends force every
// ordering — hedge fires and loses, hedge fires and wins, primary and
// hedge finish back-to-back, caller cancellation mid-hedge — while the
// winner's cancel races the loser's release. The prior audit found no
// data race; this keeps it that way.
func TestDispatcherHedgeRaceStress(t *testing.T) {
	t.Parallel()
	backends := []experiments.Backend{
		newStub("b0", 2*time.Millisecond, 0),
		newStub("b1", 100*time.Microsecond, 0),
		newStub("b2", 4*time.Millisecond, 0),
	}
	d, err := NewDispatcher(DispatcherConfig{
		Backends:           backends,
		HedgeAfter:         500 * time.Microsecond,
		PerBackendInflight: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	const callers = 24
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx := context.Background()
			if i%6 == 5 {
				// A slice of callers cancels mid-flight, racing the
				// hedge timer and both attempts' completions.
				c, cancel := context.WithTimeout(ctx, time.Duration(i)*200*time.Microsecond)
				defer cancel()
				ctx = c
			}
			res, err := d.Run(ctx, dspec(i))
			if err != nil {
				if ctx.Err() != nil {
					return // scripted cancellation
				}
				t.Errorf("Run(%d): %v", i, err)
				return
			}
			if res == nil {
				t.Errorf("Run(%d): nil result without error", i)
			}
		}(i)
	}
	wg.Wait()
	// Every slot must be released once the dust settles: acquire/release
	// pairing is exactly what the winner-cancels-loser path could break.
	// Losing attempts release from their own goroutines, so poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		held := 0
		for i := range d.slots {
			held += len(d.slots[i])
		}
		if held == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d slots still held after all runs returned", held)
		}
		time.Sleep(time.Millisecond)
	}
}
