package dserve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"dmdc/internal/experiments"
	"dmdc/internal/telemetry"
)

// submitAs POSTs one batch under a tenant header and returns the
// statuses, HTTP code, and Retry-After header value.
func submitAs(t *testing.T, url, tenant string, specs ...experiments.JobSpec) (ListResponse, int, string) {
	t.Helper()
	body, err := json.Marshal(SubmitRequest{Jobs: specs})
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	req, err := http.NewRequest(http.MethodPost, url+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set(TenantHeader, tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	defer resp.Body.Close()
	var lr ListResponse
	if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
		t.Fatalf("decode submit response (%s): %v", resp.Status, err)
	}
	return lr, resp.StatusCode, resp.Header.Get("Retry-After")
}

// TestTenantHeaderAdmission: jobs land on the queue named by the header
// (default tenant without one), and /v1/healthz breaks depth and served
// counts down per tenant.
func TestTenantHeaderAdmission(t *testing.T) {
	t.Parallel()
	srv := newTestServer(t, ServerConfig{Workers: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	lr, code, _ := submitAs(t, ts.URL, "alice", quickSpec("gcc"))
	if code != http.StatusOK || lr.Jobs[0].Tenant != "alice" {
		t.Fatalf("alice submit: code %d, tenant %q", code, lr.Jobs[0].Tenant)
	}
	if js := getStatus(t, ts.URL, lr.Jobs[0].ID, "30s"); js.Status != StatusDone {
		t.Fatalf("alice job ended %s (%s)", js.Status, js.Error)
	}
	lr, _, _ = submitAs(t, ts.URL, "", quickSpec("gzip"))
	if lr.Jobs[0].Tenant != DefaultTenant {
		t.Fatalf("headerless submit landed on tenant %q, want %q", lr.Jobs[0].Tenant, DefaultTenant)
	}
	getStatus(t, ts.URL, lr.Jobs[0].ID, "30s")

	h := srv.Stats()
	th, ok := h.Tenants["alice"]
	if !ok || th.Admitted != 1 || th.Served != 1 {
		t.Fatalf("alice tenant health %+v (present %v), want admitted=1 served=1", th, ok)
	}
	if th, ok := h.Tenants[DefaultTenant]; !ok || th.Admitted != 1 {
		t.Fatalf("default tenant health %+v (present %v), want admitted=1", th, ok)
	}
}

// TestTenantQueueIsolation: one tenant saturating its own queue is
// rejected with a Retry-After hint while another tenant is still
// admitted — per-tenant depth, not a shared bound.
func TestTenantQueueIsolation(t *testing.T) {
	t.Parallel()
	srv := newTestServer(t, ServerConfig{
		Workers: 1,
		Tenants: TenantConfig{QueueDepth: 1},
	})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Hold the worker, then fill hog's one queue slot.
	submitAs(t, ts.URL, "hog", slowSpec("gzip"))
	submitAs(t, ts.URL, "hog", slowSpec("gcc"))
	over, code, retryAfter := submitAs(t, ts.URL, "hog", slowSpec("swim"))
	if code != http.StatusServiceUnavailable {
		t.Fatalf("hog overflow: code %d, want 503", code)
	}
	if js := over.Jobs[0]; js.Status != StatusRejected || !js.Retryable || !strings.Contains(js.Error, "queue full") {
		t.Fatalf("hog overflow status %+v, want retryable queue-full rejection", js)
	}
	if secs, err := strconv.Atoi(retryAfter); err != nil || secs < 1 {
		t.Fatalf("Retry-After %q, want an integer >= 1", retryAfter)
	}

	// The other tenant's queue is untouched.
	lr, code, _ := submitAs(t, ts.URL, "quiet", slowSpec("mcf"))
	if code != http.StatusOK || lr.Jobs[0].Status != StatusQueued {
		t.Fatalf("quiet tenant blocked by hog: code %d, status %+v", code, lr.Jobs[0])
	}
}

// TestTenantQuota: a per-tenant running quota caps concurrency for that
// tenant even with idle workers.
func TestTenantQuota(t *testing.T) {
	t.Parallel()
	srv := newTestServer(t, ServerConfig{
		Workers: 4,
		Tenants: TenantConfig{Quota: 1},
	})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	submitAs(t, ts.URL, "capped", slowSpec("gzip"), slowSpec("gcc"), slowSpec("swim"))
	deadline := time.Now().Add(10 * time.Second)
	for {
		if th := srv.Stats().Tenants["capped"]; th.Running == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("capped tenant never started a job: %+v", srv.Stats().Tenants["capped"])
		}
		time.Sleep(time.Millisecond)
	}
	// Idle workers must not push the tenant past its quota.
	time.Sleep(50 * time.Millisecond)
	if th := srv.Stats().Tenants["capped"]; th.Running != 1 || th.Queued != 2 {
		t.Fatalf("capped tenant at running=%d queued=%d, want 1 running 2 queued under quota 1", th.Running, th.Queued)
	}
}

// TestTenantBadNameRejected: malformed tenant headers are a client error,
// not a new queue.
func TestTenantBadNameRejected(t *testing.T) {
	t.Parallel()
	srv := newTestServer(t, ServerConfig{Workers: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	for _, bad := range []string{"has space", strings.Repeat("x", 65)} {
		body, _ := json.Marshal(SubmitRequest{Jobs: []experiments.JobSpec{quickSpec("gcc")}})
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", bytes.NewReader(body))
		req.Header.Set(TenantHeader, bad)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("tenant %q: code %d, want 400", bad, resp.StatusCode)
		}
	}
	// Go's client refuses to even send control characters; exercise the
	// server-side check directly.
	req := httptest.NewRequest(http.MethodPost, "/v1/jobs", nil)
	req.Header[http.CanonicalHeaderKey(TenantHeader)] = []string{"ctrl\x01char"}
	if _, err := tenantFrom(req); err == nil {
		t.Fatal("control character in tenant name accepted")
	}
}

// TestTenantWeightedServing drives the full server path at weights 3:1:
// configured weights reach the scheduler, and both tenants are served to
// completion (the 10%-of-3:1 ratio itself is pinned deterministically in
// TestDRRWeightedRatio, where serving order is observable without races).
func TestTenantWeightedServing(t *testing.T) {
	t.Parallel()
	srv := newTestServer(t, ServerConfig{
		Workers: 1,
		Tenants: TenantConfig{Weights: map[string]int{"heavy": 3, "light": 1}},
	})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var heavy, light []experiments.JobSpec
	for i, b := range []string{"gzip", "gcc", "swim"} {
		spec := quickSpec(b)
		spec.Insts = 5_000 + uint64(i) // distinct content addresses
		heavy = append(heavy, spec)
		spec.Insts += 100
		light = append(light, spec)
	}
	hr, _, _ := submitAs(t, ts.URL, "heavy", heavy...)
	lr, _, _ := submitAs(t, ts.URL, "light", light...)
	for _, js := range append(hr.Jobs, lr.Jobs...) {
		if got := getStatus(t, ts.URL, js.ID, "30s"); got.Status != StatusDone {
			t.Fatalf("job %s (%s) ended %s (%s)", js.ID, js.Tenant, got.Status, got.Error)
		}
	}

	h := srv.Stats()
	if w := h.Tenants["heavy"].Weight; w != 3 {
		t.Fatalf("heavy weight %d, want 3", w)
	}
	if w := h.Tenants["light"].Weight; w != 1 {
		t.Fatalf("light weight %d, want 1", w)
	}
	for _, name := range []string{"heavy", "light"} {
		th := h.Tenants[name]
		if th.Served != th.Admitted || th.Served != 3 {
			t.Fatalf("tenant %s served %d of %d admitted, want all 3", name, th.Served, th.Admitted)
		}
	}
}

// TestTelemetryCounters: with telemetry enabled, the registry index
// exposes the server's counter snapshot, including per-tenant rows.
func TestTelemetryCounters(t *testing.T) {
	t.Parallel()
	srv := newTestServer(t, ServerConfig{Workers: 1, Telemetry: &telemetry.Config{Stride: 1024}})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	lr, _, _ := submitAs(t, ts.URL, "alice", quickSpec("gcc"))
	if js := getStatus(t, ts.URL, lr.Jobs[0].ID, "30s"); js.Status != StatusDone {
		t.Fatalf("job ended %s (%s)", js.Status, js.Error)
	}

	resp, err := http.Get(ts.URL + "/v1/telemetry")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var idx struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&idx); err != nil {
		t.Fatalf("decode telemetry index: %v", err)
	}
	if idx.Counters["jobs_executed"] != 1 {
		t.Fatalf("jobs_executed = %d, want 1 (counters: %v)", idx.Counters["jobs_executed"], idx.Counters)
	}
	if idx.Counters["tenant_alice_served"] != 1 {
		t.Fatalf("tenant_alice_served = %d, want 1 (counters: %v)", idx.Counters["tenant_alice_served"], idx.Counters)
	}
}
