package dserve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"dmdc/internal/config"
	"dmdc/internal/experiments"
	"dmdc/internal/jobstore"
	"dmdc/internal/resultcache"
)

// mediumSpec runs long enough (roughly a second) that a test can
// reliably interrupt it, but completes in reasonable time when resumed.
func mediumSpec(bench string) experiments.JobSpec {
	return experiments.JobSpec{
		Machine:   config.Config2(),
		Policy:    "baseline",
		Benchmark: bench,
		Insts:     2_000_000,
	}
}

// TestServerRestartResume is the in-process durability test: a server
// with a job store is closed mid-matrix; a second server over the same
// store and cache must re-publish completed jobs (from the cache, no
// re-execution) and re-queue and finish every incomplete one — same IDs,
// byte-identical results.
func TestServerRestartResume(t *testing.T) {
	t.Parallel()
	storeDir, cacheDir := t.TempDir(), t.TempDir()
	openAll := func() (*jobstore.Store, *resultcache.Cache) {
		st, _, err := jobstore.Open(storeDir, jobstore.Options{})
		if err != nil {
			t.Fatalf("open store: %v", err)
		}
		c, err := resultcache.Open(cacheDir)
		if err != nil {
			t.Fatalf("open cache: %v", err)
		}
		return st, c
	}

	store, cache := openAll()
	srv := newTestServer(t, ServerConfig{Workers: 1, Cache: cache, Store: store})
	ts := httptest.NewServer(srv)

	// One job completes before the restart (the ResumedDone path), then a
	// medium job holds the single worker while three more queue behind it.
	doneFirst, _ := submit(t, ts.URL, quickSpec("gzip"))
	if js := getStatus(t, ts.URL, doneFirst.Jobs[0].ID, "30s"); js.Status != StatusDone {
		t.Fatalf("warm-up job ended %s (%s)", js.Status, js.Error)
	}
	pending, _ := submit(t, ts.URL, mediumSpec("art"), quickSpec("gcc"), quickSpec("swim"), quickSpec("mcf"))
	specs := map[string]experiments.JobSpec{
		doneFirst.Jobs[0].ID: quickSpec("gzip"),
		pending.Jobs[0].ID:   mediumSpec("art"),
		pending.Jobs[1].ID:   quickSpec("gcc"),
		pending.Jobs[2].ID:   quickSpec("swim"),
		pending.Jobs[3].ID:   quickSpec("mcf"),
	}

	// Close mid-flight: the running job fails retryably, the queued ones
	// are evicted — but the journal still holds all five admissions.
	srv.Close()
	ts.Close()
	store.Close()

	store2, cache2 := openAll()
	defer store2.Close()
	srv2 := newTestServer(t, ServerConfig{Workers: 2, Cache: cache2, Store: store2})
	defer srv2.Close()
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()

	h := srv2.Stats()
	if h.ResumedDone+h.ResumedRequeued != uint64(len(specs)) {
		t.Fatalf("resumed %d done + %d requeued, want %d total",
			h.ResumedDone, h.ResumedRequeued, len(specs))
	}
	if h.ResumedDone == 0 {
		t.Fatal("completed warm-up job was not resumed from the cache")
	}
	if h.ResumedRequeued == 0 {
		t.Fatal("no job was re-queued; the restart had nothing to prove")
	}

	// Reconnecting long-pollers get every job to done with the same bytes
	// a local run produces.
	for id, spec := range specs {
		js := getStatus(t, ts2.URL, id, "60s")
		for !js.Status.Terminal() {
			js = getStatus(t, ts2.URL, id, "60s")
		}
		if js.Status != StatusDone {
			t.Fatalf("resumed job %s ended %s (%s)", id, js.Status, js.Error)
		}
		resp, err := http.Get(ts2.URL + "/v1/jobs/" + id + "/result")
		if err != nil {
			t.Fatal(err)
		}
		var got json.RawMessage
		if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
			t.Fatalf("decode result: %v", err)
		}
		resp.Body.Close()
		local, err := experiments.ExecuteJob(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := json.Marshal(local)
		if mustCompact(t, got) != mustCompact(t, want) {
			t.Errorf("resumed job %s result diverged from local", id)
		}
	}

	// Zero duplicated: the second server executed exactly the re-queued
	// jobs, never the already-completed one.
	if got := srv2.Executed(); got != h.ResumedRequeued {
		t.Fatalf("second server executed %d jobs, want exactly the %d re-queued", got, h.ResumedRequeued)
	}

	// Idempotent resubmit after restart: same IDs, no new executions.
	resub, _ := submit(t, ts2.URL, quickSpec("gzip"), quickSpec("gcc"))
	for _, js := range resub.Jobs {
		if _, ok := specs[js.ID]; !ok {
			t.Fatalf("resubmit minted a new ID %s", js.ID)
		}
		if js.Status != StatusDone {
			t.Fatalf("resubmit of finished job came back %s", js.Status)
		}
	}
	if got := srv2.Executed(); got != h.ResumedRequeued {
		t.Fatalf("resubmit re-executed: %d executions, want %d", got, h.ResumedRequeued)
	}
}

// mustCompact canonicalizes JSON for byte comparison.
func mustCompact(t *testing.T, raw []byte) string {
	t.Helper()
	var v any
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// dmdcdProc is one real dmdcd process under test.
type dmdcdProc struct {
	cmd  *exec.Cmd
	addr string
}

// startDmdcd launches the built binary and waits for its listen line.
func startDmdcd(t *testing.T, bin, addr, storeDir, cacheDir string) *dmdcdProc {
	t.Helper()
	cmd := exec.Command(bin,
		"-addr", addr,
		"-workers", "2",
		"-store-dir", storeDir,
		"-cache-dir", cacheDir,
		"-tenant-weights", "chaos=3,*=1",
	)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("start dmdcd: %v", err)
	}
	p := &dmdcdProc{cmd: cmd}
	listening := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			t.Logf("dmdcd: %s", line)
			if _, a, ok := strings.Cut(line, "listening on "); ok {
				select {
				case listening <- a:
				default:
				}
			}
		}
	}()
	select {
	case p.addr = <-listening:
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatal("dmdcd never reported its listen address")
	}
	return p
}

// waitHealthz polls the server until /v1/healthz answers.
func waitHealthz(t *testing.T, base string) Health {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/healthz")
		if err == nil {
			var h Health
			derr := json.NewDecoder(resp.Body).Decode(&h)
			resp.Body.Close()
			if derr == nil {
				return h
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("server at %s never became healthy: %v", base, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestChaosKillRestartProcess is the process-level durability test (the
// `make chaos` centerpiece): a real dmdcd is SIGKILLed mid-matrix — no
// graceful Close, no flushed state beyond the fsynced journal — then
// restarted on the same address and store. Every job must complete
// exactly once with bytes identical to a local run: zero lost, zero
// duplicated.
func TestChaosKillRestartProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills a real server process; skipped in -short")
	}
	t.Parallel()
	bin := filepath.Join(t.TempDir(), "dmdcd")
	build := exec.Command("go", "build", "-o", bin, "dmdc/cmd/dmdcd")
	build.Dir = "../.." // repo root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build dmdcd: %v\n%s", err, out)
	}

	storeDir, cacheDir := t.TempDir(), t.TempDir()
	p := startDmdcd(t, bin, "127.0.0.1:0", storeDir, cacheDir)
	base := "http://" + p.addr
	waitHealthz(t, base)

	// An 8-cell matrix, all submitted (and journaled) before the kill.
	var specs []experiments.JobSpec
	for _, pol := range []string{"baseline", "dmdc"} {
		for _, b := range []string{"gzip", "gcc", "swim", "mcf"} {
			specs = append(specs, experiments.JobSpec{
				Machine: config.Config2(), Policy: pol, Benchmark: b, Insts: 400_000,
			})
		}
	}
	body, _ := json.Marshal(SubmitRequest{Jobs: specs})
	req, _ := http.NewRequest(http.MethodPost, base+"/v1/jobs", strings.NewReader(string(body)))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(TenantHeader, "chaos")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("submit matrix: %v", err)
	}
	var lr ListResponse
	if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
		t.Fatalf("decode submit: %v", err)
	}
	resp.Body.Close()
	if len(lr.Jobs) != len(specs) {
		t.Fatalf("submitted %d cells, got %d statuses", len(specs), len(lr.Jobs))
	}
	for _, js := range lr.Jobs {
		if js.Status == StatusRejected || js.Status == StatusFailed {
			t.Fatalf("cell %s not admitted: %s (%s)", js.ID, js.Status, js.Error)
		}
	}

	// SIGKILL once at least two cells have executed: some done, some
	// running, some queued — the worst-case mix for resume.
	deadline := time.Now().Add(time.Minute)
	for waitHealthz(t, base).Executed < 2 {
		if time.Now().After(deadline) {
			t.Fatal("server never executed two cells")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := p.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatalf("kill: %v", err)
	}
	p.cmd.Wait()

	// Restart on the same address and store; the journal must account for
	// every admitted cell.
	p2 := startDmdcd(t, bin, p.addr, storeDir, cacheDir)
	defer func() {
		p2.cmd.Process.Signal(syscall.SIGTERM)
		p2.cmd.Wait()
	}()
	base2 := "http://" + p2.addr
	h := waitHealthz(t, base2)
	if h.ResumedDone+h.ResumedRequeued != uint64(len(specs)) {
		t.Fatalf("restart resumed %d done + %d requeued, want all %d admitted cells",
			h.ResumedDone, h.ResumedRequeued, len(specs))
	}
	if h.ResumedRequeued == 0 {
		t.Fatal("kill landed after the whole matrix completed; nothing was resumed")
	}

	// Zero lost: a reconnecting long-poller drives every cell to done and
	// the bytes match a local in-process run exactly.
	for i, js := range lr.Jobs {
		var got JobStatus
		pollDeadline := time.Now().Add(2 * time.Minute)
		for {
			r, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s?wait=10s", base2, js.ID))
			if err != nil {
				t.Fatalf("poll %s: %v", js.ID, err)
			}
			err = json.NewDecoder(r.Body).Decode(&got)
			r.Body.Close()
			if err != nil {
				t.Fatalf("decode poll: %v", err)
			}
			if got.Status.Terminal() {
				break
			}
			if time.Now().After(pollDeadline) {
				t.Fatalf("cell %s stuck in %s after restart", js.ID, got.Status)
			}
		}
		if got.Status != StatusDone {
			t.Fatalf("cell %s ended %s (%s)", js.ID, got.Status, got.Error)
		}
		r, err := http.Get(base2 + "/v1/jobs/" + js.ID + "/result")
		if err != nil {
			t.Fatal(err)
		}
		raw, err := io.ReadAll(r.Body)
		r.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		local, err := experiments.ExecuteJob(context.Background(), specs[i])
		if err != nil {
			t.Fatal(err)
		}
		want, _ := json.Marshal(local)
		if mustCompact(t, raw) != mustCompact(t, want) {
			t.Errorf("cell %s/%s: post-restart result diverged from local",
				specs[i].Policy, specs[i].Benchmark)
		}
	}

	// Zero duplicated: the restarted server executed exactly the
	// re-queued cells; completed ones were answered from the cache.
	h = waitHealthz(t, base2)
	if h.Executed != h.ResumedRequeued {
		t.Fatalf("restarted server executed %d cells, want exactly the %d re-queued (duplicates or losses)",
			h.Executed, h.ResumedRequeued)
	}
	if th, ok := h.Tenants["chaos"]; !ok || th.Weight != 3 {
		t.Fatalf("tenant weights not applied across restart: %+v", h.Tenants)
	}
	_ = os.Remove(bin)
}
