package dserve

// Peer-degradation chaos: a fleet instance whose peers die mid-transfer,
// serve corrupt bytes, lie about hashes, or speak a different cache
// format must degrade to local computation with byte-identical results —
// a broken peer can cost time, never correctness.

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path"
	"strconv"
	"testing"

	"dmdc/internal/experiments"
	"dmdc/internal/resultcache"
)

// localBytes canonicalizes a spec's in-process result for comparison.
func localBytes(t *testing.T, sp experiments.JobSpec) string {
	t.Helper()
	res, err := experiments.ExecuteJob(context.Background(), sp)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := json.Marshal(res)
	return mustCompact(t, b)
}

// entryHeaders stamps a cache response the way a healthy dmdcd would.
func entryHeaders(w http.ResponseWriter, body []byte) {
	sum := sha256.Sum256(body)
	w.Header().Set(CacheSumHeader, hex.EncodeToString(sum[:]))
	w.Header().Set(CacheFormatHeader, strconv.Itoa(resultcache.FormatVersion))
}

// TestChaosPeerKilledMidFetch kills the peer connection halfway through
// an entry body (the in-process stand-in for SIGKILLing the peer
// mid-transfer) and, for the second cell, refuses connections entirely.
// Both times the fetching instance must compute locally and match a
// direct run byte for byte.
func TestChaosPeerKilledMidFetch(t *testing.T) {
	t.Parallel()
	// A healthy instance a holds the warm entries the dying peer "serves".
	cacheA := openTestCache(t)
	srvA := newTestServer(t, ServerConfig{Workers: 2, Cache: cacheA})
	tsA := httptest.NewServer(srvA)
	defer func() { srvA.Close(); tsA.Close() }()
	specs := []experiments.JobSpec{quickSpec("gzip"), quickSpec("gcc")}
	runMatrix(t, tsA.URL, specs)

	// The dying peer promises the full entry, sends half, and cuts the
	// TCP connection — exactly what a SIGKILL mid-write looks like on the
	// wire.
	dying := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, ok := cacheA.GetRaw(path.Base(r.URL.Path))
		if !ok {
			http.NotFound(w, r)
			return
		}
		entryHeaders(w, body)
		w.Header().Set("Content-Length", strconv.Itoa(len(body)))
		w.WriteHeader(http.StatusOK)
		w.Write(body[:len(body)/2])
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		conn, _, err := w.(http.Hijacker).Hijack()
		if err == nil {
			conn.Close()
		}
	}))
	defer dying.Close()

	local := openTestCache(t)
	tiered, err := resultcache.NewTiered(resultcache.TieredConfig{
		Local: local,
		Peers: []resultcache.Peer{NewCachePeer(dying.URL, nil)},
	})
	if err != nil {
		t.Fatal(err)
	}
	srvB := newTestServer(t, ServerConfig{Workers: 2, Cache: tiered})
	tsB := httptest.NewServer(srvB)
	defer func() { srvB.Close(); tsB.Close() }()

	got := runMatrix(t, tsB.URL, specs[:1])
	for id, res := range got {
		if want := localBytes(t, specs[0]); res != want {
			t.Errorf("cell %s diverged after mid-fetch peer death", id)
		}
	}
	if srvB.Executed() != 1 {
		t.Fatalf("executed %d cells, want 1 local fallback", srvB.Executed())
	}
	if st := tiered.Stats(); st.PeerErrors == 0 {
		t.Fatal("mid-fetch death left no peer-error trace in the counters")
	}

	// Now the peer is gone for good: connection refused must degrade the
	// same way.
	dying.Close()
	got = runMatrix(t, tsB.URL, specs[1:])
	for id, res := range got {
		if want := localBytes(t, specs[1]); res != want {
			t.Errorf("cell %s diverged with the peer fully dead", id)
		}
	}
	if srvB.Executed() != 2 {
		t.Fatalf("executed %d cells, want 2 local fallbacks", srvB.Executed())
	}
}

// TestChaosPeerCorruptEntry points an instance at two poisoned peers —
// one serving well-hashed garbage (decode must fail), one serving a
// truncated body under the full body's hash (re-hash must fail) — and
// requires a byte-identical local fallback with both failures counted.
func TestChaosPeerCorruptEntry(t *testing.T) {
	t.Parallel()
	cacheA := openTestCache(t)
	srvA := newTestServer(t, ServerConfig{Workers: 2, Cache: cacheA})
	tsA := httptest.NewServer(srvA)
	defer func() { srvA.Close(); tsA.Close() }()
	spec := quickSpec("swim")
	runMatrix(t, tsA.URL, []experiments.JobSpec{spec})

	// Garbage that hashes honestly: the transfer verifies, the decode
	// must not.
	corrupt := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body := []byte(`{"version":0,"result":null,"flipped":"bits"}`)
		entryHeaders(w, body)
		w.WriteHeader(http.StatusOK)
		w.Write(body)
	}))
	defer corrupt.Close()

	// A truncated body under the intact body's hash: the re-hash fails.
	lying := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, ok := cacheA.GetRaw(path.Base(r.URL.Path))
		if !ok {
			http.NotFound(w, r)
			return
		}
		entryHeaders(w, body) // hash of the FULL body...
		w.WriteHeader(http.StatusOK)
		w.Write(body[:len(body)/2]) // ...over half of it
	}))
	defer lying.Close()

	local := openTestCache(t)
	tiered, err := resultcache.NewTiered(resultcache.TieredConfig{
		Local: local,
		Peers: []resultcache.Peer{NewCachePeer(corrupt.URL, nil), NewCachePeer(lying.URL, nil)},
	})
	if err != nil {
		t.Fatal(err)
	}
	srvB := newTestServer(t, ServerConfig{Workers: 2, Cache: tiered})
	tsB := httptest.NewServer(srvB)
	defer func() { srvB.Close(); tsB.Close() }()

	got := runMatrix(t, tsB.URL, []experiments.JobSpec{spec})
	for id, res := range got {
		if want := localBytes(t, spec); res != want {
			t.Errorf("cell %s diverged behind poisoned peers", id)
		}
	}
	if srvB.Executed() != 1 {
		t.Fatalf("executed %d cells, want 1 local fallback", srvB.Executed())
	}
	if st := tiered.Stats(); st.PeerErrors < 2 {
		t.Fatalf("peer errors = %d, want both poisoned peers counted", st.PeerErrors)
	}
	// Nothing poisoned may have reached the local tier before the real
	// result landed; the stored entry must round-trip to the real result.
	if res, ok := local.Get(spec.CacheKey()); !ok {
		t.Fatal("local tier missing the computed result")
	} else if b, _ := json.Marshal(res); mustCompact(t, b) != localBytes(t, spec) {
		t.Fatal("local tier holds a poisoned entry")
	}

	// The PUT side fails closed the same way: a pushed entry whose body
	// does not match its hash header must be rejected with a structured
	// envelope and leave no trace in the store.
	evil := []byte(`{"version":0,"result":null}`)
	req, _ := http.NewRequest(http.MethodPut, tsB.URL+"/v1/cache/"+quickSpec("mcf").CacheKey(),
		bytes.NewReader(evil))
	req.Header.Set(CacheSumHeader, "0000000000000000000000000000000000000000000000000000000000000000")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var env ErrorEnvelope
	derr := json.NewDecoder(resp.Body).Decode(&env)
	resp.Body.Close()
	if derr != nil || resp.StatusCode != http.StatusBadRequest || env.Code != CodeBadEntry {
		t.Fatalf("lying PUT returned %d %+v, want %d %s", resp.StatusCode, env, http.StatusBadRequest, CodeBadEntry)
	}
	if _, ok := local.Get(quickSpec("mcf").CacheKey()); ok {
		t.Fatal("rejected PUT still landed in the store")
	}
}
