package dserve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"dmdc/internal/core"
	"dmdc/internal/experiments"
	"dmdc/internal/resultcache"
)

// Local executes jobs in-process. It is the zero-config backend: a
// Dispatcher over a single Local behaves exactly like the Suite's own
// worker pool, so code written against Backend needs no server to run.
type Local struct {
	// Cache, when non-nil, answers non-soundness jobs from the result
	// store and stores computed results back. Any resultcache.Store works
	// (disk cache, fleet-tiered, test fake).
	Cache resultcache.Store
}

// Name identifies the backend.
func (l *Local) Name() string { return "local" }

// Run executes one job in this process.
func (l *Local) Run(ctx context.Context, spec experiments.JobSpec) (*core.Result, error) {
	cacheable := l.Cache != nil && !spec.Soundness
	if cacheable {
		if res, ok := l.Cache.Get(spec.CacheKey()); ok {
			return res, nil
		}
	}
	res, err := experiments.ExecuteJob(ctx, spec)
	if err != nil {
		// Only a cancellation is environmental; everything else in-process
		// is deterministic and would fail identically on retry.
		return nil, &BackendError{Backend: l.Name(), Retryable: ctx.Err() != nil, Err: err}
	}
	if cacheable {
		l.Cache.Put(spec.CacheKey(), res)
	}
	return res, nil
}

// Remote executes jobs on a dmdcd server over its HTTP/JSON API: submit a
// one-job batch, long-poll the job's status, fetch the result. Network
// failures, 5xx responses, and backpressure rejections come back as
// retryable BackendErrors so the Dispatcher moves the job elsewhere.
type Remote struct {
	base   string
	client *http.Client
	poll   time.Duration
	tenant string
}

// NewRemote builds a client for the dmdcd server at baseURL (e.g.
// "http://host:8321"). client nil means http.DefaultClient.
func NewRemote(baseURL string, client *http.Client) *Remote {
	if client == nil {
		client = http.DefaultClient
	}
	return &Remote{
		base:   strings.TrimRight(baseURL, "/"),
		client: client,
		poll:   10 * time.Second,
	}
}

// WithTenant makes every request identify as the named tenant (the
// X-DMDC-Tenant header), landing jobs on that tenant's fair-queued
// admission. Returns r for chaining; empty means the server default.
func (r *Remote) WithTenant(tenant string) *Remote {
	r.tenant = tenant
	return r
}

// Name identifies the backend by its base URL.
func (r *Remote) Name() string { return r.base }

// retryableStatus reports whether an HTTP status marks an environmental
// failure: server errors and backpressure, not client mistakes.
func retryableStatus(code int) bool {
	return code >= 500 || code == http.StatusTooManyRequests
}

// retryAfterOf extracts an integer-seconds Retry-After hint from a
// backpressure response (503/429); 0 when absent or unparseable.
func retryAfterOf(resp *http.Response) time.Duration {
	if resp.StatusCode != http.StatusServiceUnavailable && resp.StatusCode != http.StatusTooManyRequests {
		return 0
	}
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || secs <= 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// errBody extracts the structured ErrorEnvelope from a non-2xx response,
// falling back to the raw body for non-envelope responses (proxies,
// foreign servers).
func errBody(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var e ErrorEnvelope
	if json.Unmarshal(body, &e) == nil && e.Code != "" {
		return fmt.Errorf("%s: %s: %s", resp.Status, e.Code, e.Message)
	}
	return fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(body))
}

// envelopeOf parses the envelope out of a non-2xx response body without
// consuming errBody's view (the caller passes the already-read bytes).
// It reports whether an envelope was present.
func envelopeOf(body []byte) (ErrorEnvelope, bool) {
	var e ErrorEnvelope
	if json.Unmarshal(body, &e) == nil && e.Code != "" {
		return e, true
	}
	return ErrorEnvelope{}, false
}

// do issues one request and decodes a 2xx JSON body into out. Non-2xx
// responses and transport errors become BackendErrors.
func (r *Remote) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return &BackendError{Backend: r.Name(), Err: fmt.Errorf("encode request: %w", err)}
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, r.base+path, body)
	if err != nil {
		return &BackendError{Backend: r.Name(), Err: err}
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if r.tenant != "" {
		req.Header.Set(TenantHeader, r.tenant)
	}
	resp, err := r.client.Do(req)
	if err != nil {
		// Transport failure: connection refused, reset, timeout — the
		// server may be gone, but another backend can run the job.
		return &BackendError{Backend: r.Name(), Retryable: true, Err: err}
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		be := &BackendError{
			Backend:    r.Name(),
			Retryable:  retryableStatus(resp.StatusCode),
			RetryAfter: retryAfterOf(resp),
			Err:        fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(body)),
		}
		if env, ok := envelopeOf(body); ok {
			// The server's own verdict beats the status-code heuristic: it
			// knows whether the failure was environmental (backpressure,
			// shutdown) or deterministic (bad spec, failed simulation).
			be.Retryable = env.Retryable
			if env.RetryAfter > 0 {
				be.RetryAfter = time.Duration(env.RetryAfter) * time.Second
			}
			be.Err = fmt.Errorf("%s: %s: %s", resp.Status, env.Code, env.Message)
		}
		return be
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return &BackendError{Backend: r.Name(), Retryable: true, Err: fmt.Errorf("decode response: %w", err)}
		}
	}
	return nil
}

// Run submits the job and waits for its terminal state.
func (r *Remote) Run(ctx context.Context, spec experiments.JobSpec) (*core.Result, error) {
	var sub ListResponse
	if err := r.do(ctx, http.MethodPost, "/v1/jobs", SubmitRequest{Jobs: []experiments.JobSpec{spec}}, &sub); err != nil {
		return nil, err
	}
	if len(sub.Jobs) != 1 {
		return nil, &BackendError{Backend: r.Name(), Retryable: true,
			Err: fmt.Errorf("submit returned %d statuses for 1 job", len(sub.Jobs))}
	}
	js := sub.Jobs[0]
	for !js.Status.Terminal() {
		if err := ctx.Err(); err != nil {
			return nil, &BackendError{Backend: r.Name(), Retryable: true, Err: err}
		}
		if err := r.do(ctx, http.MethodGet,
			fmt.Sprintf("/v1/jobs/%s?wait=%s", js.ID, r.poll), nil, &js); err != nil {
			return nil, err
		}
	}
	if js.Status == StatusRejected {
		// Backpressure at submit, or the job was evicted by a server
		// shutdown while queued. Retryable either way — backoff or another
		// backend will absorb the job.
		return nil, &BackendError{Backend: r.Name(), Retryable: true,
			Err: fmt.Errorf("rejected: %s", js.Error)}
	}
	if js.Status == StatusFailed {
		return nil, &BackendError{Backend: r.Name(), Retryable: js.Retryable,
			Err: fmt.Errorf("job failed: %s", js.Error)}
	}
	var res core.Result
	if err := r.do(ctx, http.MethodGet, "/v1/jobs/"+js.ID+"/result", nil, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// Health fetches the server's health snapshot.
func (r *Remote) Health(ctx context.Context) (*Health, error) {
	var h Health
	if err := r.do(ctx, http.MethodGet, "/v1/healthz", nil, &h); err != nil {
		return nil, err
	}
	return &h, nil
}
