package dserve

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"dmdc/internal/config"
	"dmdc/internal/core"
	"dmdc/internal/experiments"
)

// fingerprint renders a result exactly like the golden suite.
func fingerprint(t *testing.T, r *core.Result) string {
	t.Helper()
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return string(b)
}

// TestDistributedEqualsLocal is the tentpole acceptance test: a
// 3-benchmark × 3-config × 4-policy matrix dispatched across two dmdcd
// servers must be byte-identical — every stat counter, every energy
// event — to the same cells executed in-process. Deterministic
// simulation makes this a hard equality, not a tolerance check.
func TestDistributedEqualsLocal(t *testing.T) {
	if testing.Short() {
		t.Skip("72 simulations; skipped in -short")
	}
	t.Parallel()
	const insts = 25_000
	benches := []string{"gzip", "gcc", "swim"}
	machines := []config.Machine{config.Config1(), config.Config2(), config.Config3()}
	policies := []string{"baseline", "yla", "dmdc", "dmdc-local"}

	var specs []experiments.JobSpec
	for _, m := range machines {
		for _, p := range policies {
			for _, b := range benches {
				specs = append(specs, experiments.JobSpec{
					Machine: m, Policy: p, Benchmark: b, Insts: insts,
				})
			}
		}
	}

	srv1 := newTestServer(t, ServerConfig{Workers: 2})
	defer srv1.Close()
	ts1 := httptest.NewServer(srv1)
	defer ts1.Close()
	srv2 := newTestServer(t, ServerConfig{Workers: 2})
	defer srv2.Close()
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()

	d, err := NewDispatcher(DispatcherConfig{
		Backends: []experiments.Backend{
			NewRemote(ts1.URL, nil),
			NewRemote(ts2.URL, nil),
		},
		PerBackendInflight: 4,
	})
	if err != nil {
		t.Fatal(err)
	}

	remote := make([]*core.Result, len(specs))
	var wg sync.WaitGroup
	for i, spec := range specs {
		wg.Add(1)
		go func(i int, spec experiments.JobSpec) {
			defer wg.Done()
			r, err := d.Run(context.Background(), spec)
			if err != nil {
				t.Errorf("dispatch %s/%s/%s: %v", spec.Machine.Name, spec.Policy, spec.Benchmark, err)
				return
			}
			remote[i] = r
		}(i, spec)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	for i, spec := range specs {
		local, err := experiments.ExecuteJob(context.Background(), spec)
		if err != nil {
			t.Fatalf("local %s/%s/%s: %v", spec.Machine.Name, spec.Policy, spec.Benchmark, err)
		}
		if got, want := fingerprint(t, remote[i]), fingerprint(t, local); got != want {
			t.Errorf("cell %s/%s/%s: distributed result diverged from local", spec.Machine.Name, spec.Policy, spec.Benchmark)
		}
	}

	// Every cell executed exactly once, spread across both servers.
	e1, e2 := srv1.Executed(), srv2.Executed()
	if e1+e2 != uint64(len(specs)) {
		t.Errorf("servers executed %d+%d simulations for %d unique cells", e1, e2, len(specs))
	}
	if e1 == 0 || e2 == 0 {
		t.Errorf("matrix was not sharded: server split %d/%d", e1, e2)
	}
}

// TestRemoteAgainstServer drives the Remote client end to end against a
// real server, including the error taxonomy (permanent validation
// failure vs retryable rejection).
func TestRemoteAgainstServer(t *testing.T) {
	t.Parallel()
	srv := newTestServer(t, ServerConfig{Workers: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	r := NewRemote(ts.URL, nil)

	spec := quickSpec("gcc")
	res, err := r.Run(context.Background(), spec)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	local, err := experiments.ExecuteJob(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(t, res) != fingerprint(t, local) {
		t.Fatal("remote result diverged from local")
	}

	// A deterministically bad spec must come back permanent.
	_, err = r.Run(context.Background(), experiments.JobSpec{Policy: "nope", Benchmark: "gcc", Insts: 1})
	if err == nil || Retryable(err) {
		t.Fatalf("bad spec error %v, want permanent", err)
	}

	// A dead server must come back retryable.
	h, err := r.Health(context.Background())
	if err != nil || !h.OK {
		t.Fatalf("health: %v %+v", err, h)
	}
	ts.Close()
	_, err = r.Run(context.Background(), spec)
	if err == nil || !Retryable(err) {
		t.Fatalf("dead server error %v, want retryable", err)
	}
}

// TestChaosMatrix is the fault-tolerance acceptance test (run under
// -race via `make check`): a matrix dispatched across two servers while
// one server is killed mid-flight and the other takes a burst of
// injected 502s. Every job must complete exactly once with the correct
// bytes — zero lost, zero duplicated.
func TestChaosMatrix(t *testing.T) {
	t.Parallel()
	const insts = 15_000
	benches := []string{"gzip", "gcc", "swim", "mcf"}
	policies := []string{"baseline", "dmdc"}
	var specs []experiments.JobSpec
	for _, p := range policies {
		for _, b := range benches {
			specs = append(specs, experiments.JobSpec{
				Machine: config.Config2(), Policy: p, Benchmark: b, Insts: insts,
			})
		}
	}

	// Both servers share one content-addressed cache, so a job whose
	// result was computed but never delivered (connection killed between
	// execute and fetch) is answered from the cache on re-dispatch
	// instead of executing twice.
	cache := openTestCache(t)
	srv1 := newTestServer(t, ServerConfig{Workers: 2, Cache: cache})
	ts1 := httptest.NewServer(srv1)
	defer ts1.Close()
	defer srv1.Close()
	srv2 := newTestServer(t, ServerConfig{Workers: 2, Cache: cache})
	defer srv2.Close()
	// Server 2 sits behind a fault-injecting proxy: requests during the
	// burst window get a 502 without reaching the server.
	inject := newFaultWindow(8, 6) // after 8 requests, fail the next 6
	ts2 := httptest.NewServer(inject.wrap(srv2))
	defer ts2.Close()

	d, err := NewDispatcher(DispatcherConfig{
		Backends: []experiments.Backend{
			NewRemote(ts1.URL, nil),
			NewRemote(ts2.URL, nil),
		},
		PerBackendInflight: 3,
		MaxAttempts:        10,
		RetryBase:          2 * time.Millisecond,
		RetryMax:           50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Kill server 1 after its second completed simulation: drain first
	// (in-flight jobs fail retryably), then sever the transport.
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		deadline := time.Now().Add(time.Minute)
		for srv1.Executed() < 2 && time.Now().Before(deadline) {
			time.Sleep(2 * time.Millisecond)
		}
		srv1.Close()
		ts1.CloseClientConnections()
	}()

	results := make([]*core.Result, len(specs))
	var wg sync.WaitGroup
	for i, spec := range specs {
		wg.Add(1)
		go func(i int, spec experiments.JobSpec) {
			defer wg.Done()
			r, err := d.Run(context.Background(), spec)
			if err != nil {
				t.Errorf("job %s/%s lost: %v", spec.Policy, spec.Benchmark, err)
				return
			}
			results[i] = r
		}(i, spec)
	}
	wg.Wait()
	<-killed
	if t.Failed() {
		t.FailNow()
	}

	// Zero lost: every cell produced a result with the correct bytes.
	for i, spec := range specs {
		local, err := experiments.ExecuteJob(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		if fingerprint(t, results[i]) != fingerprint(t, local) {
			t.Errorf("cell %s/%s: chaos result diverged from local", spec.Policy, spec.Benchmark)
		}
	}
	// Zero duplicated: the shared cache and content-addressed admission
	// mean each unique cell simulated at most once across the fleet.
	if e1, e2 := srv1.Executed(), srv2.Executed(); e1+e2 > uint64(len(specs)) {
		t.Errorf("fleet executed %d+%d simulations for %d unique cells (duplicates)", e1, e2, len(specs))
	}
	if inject.fired.Load() == 0 {
		t.Error("fault window never fired; chaos did not exercise the 5xx path")
	}
}
