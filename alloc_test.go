package dmdc_test

import (
	"testing"

	"dmdc"
)

// Allocation budget for one pooled-arena simulation run. A warm run's
// remaining allocations are per-run construction — cache hierarchy,
// branch predictor, policy, stats — not per-instruction or per-cycle
// work; the SoA/arena refactor drove BenchmarkSimBaseline from ~7.8k
// allocs/op to under a hundred. The ceiling is set loose enough for Go
// version drift in map/slice growth but far below what any per-dispatch
// or per-event allocation regression would produce (each costs tens of
// thousands per 5k-instruction run).
const allocBudget = 500

// TestAllocationBudget is the `make check` gate (alloc-gate target) that
// keeps the simulator's hot loop allocation-free.
func TestAllocationBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation counting is load-sensitive; skipped in -short")
	}
	run := func() {
		if _, err := simulate(dmdc.Config2(), "gcc", dmdc.PolicyDMDC, 5_000); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm the arena pool and the CFG template cache
	if got := testing.AllocsPerRun(10, run); got > allocBudget {
		t.Fatalf("allocations per run = %.0f, budget %d — a hot-path allocation crept back in", got, allocBudget)
	}
}
